// Instrumentation points the paper's visualization tool hooks (§4.2).
//
// The kernel version instruments add_nr_running/sub_nr_running (runqueue
// size), account_entity_enqueue/dequeue (runqueue load), and the balancing /
// wakeup functions (set of considered cores). The scheduler calls this
// interface at the same points; src/tools/recorder.h provides the concrete
// in-memory recorder, and a null sink keeps the scheduler overhead-free when
// profiling is off.
#ifndef SRC_CORE_TRACE_H_
#define SRC_CORE_TRACE_H_

#include "src/core/entity.h"
#include "src/simkit/cpuset.h"
#include "src/simkit/time.h"

namespace wcores {

enum class ConsideredKind {
  kPeriodicBalance,
  kIdleBalance,
  kNohzBalance,
  kWakeup,
};

enum class MigrationReason {
  kPeriodicBalance,
  kIdleBalance,
  kNohzBalance,
  kHotplug,
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  // Runqueue size changed (maps to add_nr_running / sub_nr_running).
  virtual void OnNrRunning(Time now, CpuId cpu, int nr_running) {
    (void)now;
    (void)cpu;
    (void)nr_running;
  }

  // Runqueue load changed (maps to account_entity_enqueue / _dequeue).
  virtual void OnLoad(Time now, CpuId cpu, double load) {
    (void)now;
    (void)cpu;
    (void)load;
  }

  // Cores examined by one balancing pass or one wakeup placement (maps to
  // update_sg_lb_stats / find_busiest_queue / select_idle_sibling /
  // find_idlest_group instrumentation).
  virtual void OnConsidered(Time now, CpuId initiator, const CpuSet& considered,
                            ConsideredKind kind) {
    (void)now;
    (void)initiator;
    (void)considered;
    (void)kind;
  }

  virtual void OnMigration(Time now, ThreadId tid, CpuId from, CpuId to,
                           MigrationReason reason) {
    (void)now;
    (void)tid;
    (void)from;
    (void)to;
    (void)reason;
  }

  // ---- Latency accounting hooks (src/telemetry/) --------------------------
  //
  // These map to the kernel's sched_switch tracepoint and the schedstat
  // wait/sleep accounting (sched_stat_wait, sched_stat_runtime): every
  // context switch reports how long the incoming thread sat queued and how
  // long the outgoing thread held the core.

  // `tid` became the running thread of `cpu`; it spent `waited` queued on a
  // runqueue since it last became runnable (maps to sched_stat_wait).
  virtual void OnSwitchIn(Time now, CpuId cpu, ThreadId tid, Time waited) {
    (void)now;
    (void)cpu;
    (void)tid;
    (void)waited;
  }

  // `tid` stopped running on `cpu` after holding it for `ran` (the realized
  // timeslice; maps to sched_stat_runtime). `still_runnable` distinguishes
  // preemption from blocking/exit, like prev_state in sched_switch.
  virtual void OnSwitchOut(Time now, CpuId cpu, ThreadId tid, Time ran, bool still_runnable) {
    (void)now;
    (void)cpu;
    (void)tid;
    (void)ran;
    (void)still_runnable;
  }

  // `tid` ran for the first time after a wakeup; `latency` is wakeup ->
  // first run (maps to sched_stat_sleep + the wakeup-latency metric of
  // `perf sched latency`).
  virtual void OnWakeupLatency(Time now, CpuId cpu, ThreadId tid, Time latency) {
    (void)now;
    (void)cpu;
    (void)tid;
    (void)latency;
  }

  // `cpu` ran out of work / received work again (maps to the idle task
  // switching in and out).
  virtual void OnIdleEnter(Time now, CpuId cpu) {
    (void)now;
    (void)cpu;
  }
  virtual void OnIdleExit(Time now, CpuId cpu, Time idle_for) {
    (void)now;
    (void)cpu;
    (void)idle_for;
  }
};

}  // namespace wcores

#endif  // SRC_CORE_TRACE_H_
