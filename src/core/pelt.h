// Per-entity load tracking (§2.2.1, "The load tracking metric").
//
// CFS balances runqueues by *load*: the combination of a thread's weight and
// its average CPU utilization. A thread that rarely needs the CPU has its
// load decayed accordingly. The kernel implements this with PELT (per-entity
// load tracking): a geometric series over 1 ms periods where a contribution
// 32 ms in the past counts half. We implement the continuous-time equivalent,
// an exponentially-decayed average with half-life 32 ms:
//
//   avg(t + d) = avg(t) * 2^(-d/32ms) + state * (1 - 2^(-d/32ms))
//
// where state is 1 while the entity is runnable (running or waiting in a
// runqueue) and 0 while it sleeps. The value converges to the fraction of
// time the entity spends runnable, which is what the balancer multiplies by
// the weight (and divides by the autogroup size) to obtain the load.
//
// Decay-forward (the balancer's cross-instant caches): rolling a cached
// aggregate forward from instant t0 to t1 by multiplying with Decay(t1 - t0)
// is how the kernel's ___update_load_sum amortizes per-entity walks, but in
// IEEE-754 doubles that multiply is NOT bit-identical to re-evaluating
// ValueAt at t1 — exp2 of a sum is not the rounded product of exp2s, and
// float multiplication does not distribute over a sum of entities (the golden
// table test in tests/core/pelt_test.cc pins both failures). The subdomain
// where decay-forward IS exact — trivially, with a roll-forward factor of
// exactly 1.0 — is the set of trackers whose ValueAt is *constant*:
// fully-ramped runnable entities and fully-decayed blocked ones. That is what
// ConstantFrom() below detects, and what the RqLoad / group-stats memos in
// src/core/scheduler*.cc key their cross-instant validity on.
#ifndef SRC_CORE_PELT_H_
#define SRC_CORE_PELT_H_

#include <cmath>

#include "src/simkit/time.h"

namespace wcores {

class LoadTracker {
 public:
  // PELT half-life: a contribution 32 ms in the past weighs one half.
  static constexpr Time kHalfLife = Milliseconds(32);

  // Decay() saturates to exactly 0.0 beyond this horizon (20 half-lives; the
  // true factor would be below 1e-6). Besides keeping exp2 out of the common
  // idle path, the saturation makes long-elapsed trackers exactly constant,
  // which ConstantFrom() exploits.
  static constexpr Time kSaturationHorizon = 20 * kHalfLife;

  // Threads start with a full contribution, like the kernel's
  // init_entity_runnable_average: a new thread is assumed CPU-hungry until
  // proven otherwise.
  explicit LoadTracker(double initial = 1.0) : avg_(initial) {}

  // Accounts the elapsed time since the last update under the previous
  // state, then switches to `runnable`.
  void SetState(Time now, bool runnable) {
    Advance(now);
    runnable_ = runnable;
  }

  // Accounts elapsed time under the current state.
  void Advance(Time now) {
    // wc-lint: allow(A4 the tracker folding its own history, not a rq sum)
    avg_ = ValueAt(now);
    last_update_ = now;
  }

  // Projected average at `now` without mutating. Pure; used by the balancer
  // and the sanity checker, which read many entities per pass.
  double ValueAt(Time now) const {
    if (now <= last_update_) {
      return avg_;
    }
    // Saturated trackers are fixed points of the decay blend — the
    // ConstantFrom() cases 1 and 2 below prove fl(avg*k + state*(1-k))
    // lands back on avg_ exactly, for every k in [0, 1]. Returning avg_
    // directly is therefore bit-identical, and spares the balance folds a
    // libm exp2 for every fully-ramped hog and fully-decayed sleeper.
    // wc-lint: allow(D4 exact-saturation probe; fixed points of ValueAt, see ConstantFrom proof)
    if (runnable_ ? avg_ == 1.0 : avg_ == 0.0) {
      return avg_;
    }
    double k = Decay(now - last_update_);
    return avg_ * k + (runnable_ ? 1.0 : 0.0) * (1.0 - k);
  }

  // True if ValueAt(u) returns one and the same double for every u >= t
  // (with t >= last_update_): the tracker's contribution to any sum taken at
  // or after t can be cached at t and reused verbatim at later instants —
  // exact decay-forward, with a roll-forward factor of exactly 1.0.
  //
  // The three constant cases, with the IEEE-754 argument:
  //
  //  1. runnable && avg_ == 1.0. For u > last_update_, ValueAt computes
  //     fl(1.0 * k + fl(1.0 - k)) with k = Decay(u - last_update_) in [0, 1].
  //     1.0 * k is exactly k. For k >= 0.5, fl(1.0 - k) is exact by the
  //     Sterbenz lemma, so the sum is exactly 1.0. For k < 0.5, 1.0 - k lies
  //     in (0.5, 1] where the spacing is 2^-53, so fl(1.0 - k) = 1 - k + e
  //     with |e| <= 2^-54; the true sum k + fl(1.0 - k) = 1 + e then rounds
  //     to 1.0 (1 - 2^-54 is the tie midpoint below 1.0 and resolves to the
  //     even mantissa, 1.0). Hence ValueAt == 1.0 for all u. A continuously
  //     runnable thread reaches avg_ == 1.0 either at creation (trackers are
  //     born at 1.0) or by the same rounding after ~54 half-lives (~1.7 s).
  //  2. !runnable && avg_ == 0.0. ValueAt computes fl(0.0 * k + 0.0 * (1-k))
  //     which is exactly 0.0 for every finite k.
  //  3. t - last_update_ > kSaturationHorizon. Decay saturates to 0.0 for
  //     every u >= t, so ValueAt is exactly (runnable ? 1.0 : 0.0).
  //
  // The equality tests below are deliberate: they probe for the exact
  // saturated values, not for approximate convergence.
  bool ConstantFrom(Time t) const {
    if (t > last_update_ && t - last_update_ > kSaturationHorizon) {
      return true;
    }
    // wc-lint: allow(D4 exact-saturation probe; 1.0 and 0.0 are fixed points of ValueAt, see proof above)
    return runnable_ ? avg_ == 1.0 : avg_ == 0.0;
  }

  // Decay factor 2^(-elapsed / half-life), saturating to 0.0 beyond
  // kSaturationHorizon. Public so the decay-forward golden tests and the
  // fuzzer's property checks can pin its exact values. Inline so ValueAt —
  // called once per entity per balance fold — keeps the saturation test and
  // the division at the call site; the exp2 itself stays a libm call, so
  // the produced doubles are the same whether or not inlining happens.
  static double Decay(Time elapsed);

  // Closed-form multi-period decay: the factor covering `periods`
  // back-to-back spans of `period`, evaluated as a single exp2 over the
  // total elapsed time — the form the tracker itself uses. In IEEE doubles
  // this is NOT the same as multiplying Decay(period) by itself `periods`
  // times (the golden table test demonstrates the divergence), which is why
  // the balancer's caches roll sums forward only across the constant
  // subdomain (ConstantFrom) instead of scaling them.
  static double DecayPeriods(Time period, int periods);

  bool runnable() const { return runnable_; }
  Time last_update() const { return last_update_; }

 private:
  double avg_ = 0.0;
  Time last_update_ = 0;
  bool runnable_ = false;
};

inline double LoadTracker::Decay(Time elapsed) {
  // 2^(-elapsed / half-life). Beyond the saturation horizon the contribution
  // is below 1e-6; short-circuit to keep exp2 out of the common idle path.
  // The saturated 0.0 is also what makes ConstantFrom's case 3 exact.
  if (elapsed > kSaturationHorizon) {
    return 0.0;
  }
  return std::exp2(-static_cast<double>(elapsed) / static_cast<double>(kHalfLife));
}

inline double LoadTracker::DecayPeriods(Time period, int periods) {
  if (periods <= 0) {
    return 1.0;
  }
  return Decay(period * static_cast<Time>(periods));
}

}  // namespace wcores

#endif  // SRC_CORE_PELT_H_
