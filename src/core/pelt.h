// Per-entity load tracking (§2.2.1, "The load tracking metric").
//
// CFS balances runqueues by *load*: the combination of a thread's weight and
// its average CPU utilization. A thread that rarely needs the CPU has its
// load decayed accordingly. The kernel implements this with PELT (per-entity
// load tracking): a geometric series over 1 ms periods where a contribution
// 32 ms in the past counts half. We implement the continuous-time equivalent,
// an exponentially-decayed average with half-life 32 ms:
//
//   avg(t + d) = avg(t) * 2^(-d/32ms) + state * (1 - 2^(-d/32ms))
//
// where state is 1 while the entity is runnable (running or waiting in a
// runqueue) and 0 while it sleeps. The value converges to the fraction of
// time the entity spends runnable, which is what the balancer multiplies by
// the weight (and divides by the autogroup size) to obtain the load.
#ifndef SRC_CORE_PELT_H_
#define SRC_CORE_PELT_H_

#include "src/simkit/time.h"

namespace wcores {

class LoadTracker {
 public:
  // PELT half-life: a contribution 32 ms in the past weighs one half.
  static constexpr Time kHalfLife = Milliseconds(32);

  // Threads start with a full contribution, like the kernel's
  // init_entity_runnable_average: a new thread is assumed CPU-hungry until
  // proven otherwise.
  explicit LoadTracker(double initial = 1.0) : avg_(initial) {}

  // Accounts the elapsed time since the last update under the previous
  // state, then switches to `runnable`.
  void SetState(Time now, bool runnable) {
    Advance(now);
    runnable_ = runnable;
  }

  // Accounts elapsed time under the current state.
  void Advance(Time now) {
    avg_ = ValueAt(now);
    last_update_ = now;
  }

  // Projected average at `now` without mutating. Pure; used by the balancer
  // and the sanity checker, which read many entities per pass.
  double ValueAt(Time now) const {
    if (now <= last_update_) {
      return avg_;
    }
    double k = Decay(now - last_update_);
    return avg_ * k + (runnable_ ? 1.0 : 0.0) * (1.0 - k);
  }

  bool runnable() const { return runnable_; }
  Time last_update() const { return last_update_; }

 private:
  static double Decay(Time elapsed);

  double avg_ = 0.0;
  Time last_update_ = 0;
  bool runnable_ = false;
};

}  // namespace wcores

#endif  // SRC_CORE_PELT_H_
