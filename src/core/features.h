// Scheduler feature flags and tunables.
//
// Each of the four bugs studied in the paper is the *default* behavior, as it
// was in the stock kernels (3.17-4.3) the authors analyzed; each fix is an
// opt-in flag. Benchmarks toggle exactly one flag to ablate one bug, or
// combinations (Table 2 sweeps Group Imbalance x Overload-on-Wakeup).
#ifndef SRC_CORE_FEATURES_H_
#define SRC_CORE_FEATURES_H_

#include "src/simkit/time.h"

namespace wcores {

struct SchedFeatures {
  // §3.1 Group Imbalance. Stock: the balancer compares scheduling groups by
  // their *average* load, so one high-load thread conceals idle cores on its
  // node. Fix: compare the *minimum* load of each group.
  bool fix_group_imbalance = false;

  // §3.2 Scheduling Group Construction. Stock: multi-node scheduling groups
  // are constructed from Core 0's perspective and shared by every core, so
  // nodes two hops apart appear together in all groups. Fix: each core builds
  // groups from its own perspective.
  bool fix_group_construction = false;

  // §3.3 Overload-on-Wakeup. Stock: a woken thread is only placed on cores of
  // the node it slept on (cache-reuse optimization), even when other nodes
  // have idle cores. Fix: wake on the last-used core if idle, otherwise on
  // the core that has been idle the longest, otherwise fall back.
  bool fix_overload_wakeup = false;

  // §3.4 Missing Scheduling Domains. Stock: when a core is disabled and
  // re-enabled, domain regeneration omits the cross-NUMA step, so load is
  // never balanced between nodes again. Fix: regenerate all levels.
  bool fix_missing_domains = false;

  // Autogroups (§2.2.1): a thread's load is divided by the number of threads
  // in its autogroup. The paper disables autogroups in the Overload-on-Wakeup
  // experiment to isolate that bug.
  bool autogroup_enabled = true;

  static SchedFeatures Stock() { return SchedFeatures{}; }

  static SchedFeatures AllFixed() {
    SchedFeatures f;
    f.fix_group_imbalance = true;
    f.fix_group_construction = true;
    f.fix_overload_wakeup = true;
    f.fix_missing_domains = true;
    return f;
  }
};

struct SchedTunables {
  // Scheduler tick; the load balancer is driven off ticks ("one load
  // balancing call every 4ms", Figure 5).
  Time tick_period = Milliseconds(4);

  // Balance interval of the bottom scheduling domain; doubles per level.
  Time base_balance_interval = Milliseconds(4);

  // A *busy* core balances its domains only every interval x this factor
  // (kernel busy_factor = 32): its cycles are precious, and without this
  // damping busy cores bounce queued threads between runqueues every few
  // milliseconds, starving them. Idle cores (newidle/NOHZ) balance at the
  // base interval.
  int busy_balance_factor = 32;

  // CFS targeted preemption latency: every runnable thread should run at
  // least once per this interval. Scaled by 1+log2(ncpus) as in the kernel.
  Time sched_latency = Milliseconds(24);

  // Minimum timeslice a thread gets regardless of how crowded the rq is.
  Time min_granularity = Milliseconds(3);

  // A waking thread preempts the running one only if its vruntime is behind
  // by more than this.
  Time wakeup_granularity = Milliseconds(4);

  // Cost charged to a core for each context switch.
  Time context_switch_cost = Microseconds(2);

  // Minimum spacing between NOHZ kicks issued by one overloaded core.
  Time nohz_kick_interval = Milliseconds(4);

  // A thread that ran within this window is considered cache-hot and is
  // skipped by the balancer when colder candidates exist
  // (sysctl_sched_migration_cost, default 500us in the kernel).
  Time cache_hot_threshold = Microseconds(500);

  // Kernel defaults scaled by min(1 + log2(ncpus), 8), as in
  // kernel/sched/fair.c:sched_proportional_slice.
  static SchedTunables ForCpus(int n_cpus);
};

}  // namespace wcores

#endif  // SRC_CORE_FEATURES_H_
