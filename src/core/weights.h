// Nice levels and scheduling weights (§2.1).
//
// CFS divides CPU time among threads in proportion to their weights. The
// weight table is the kernel's sched_prio_to_weight: each nice step changes
// the weight by ~1.25x so that one step costs ~10% relative CPU time.
#ifndef SRC_CORE_WEIGHTS_H_
#define SRC_CORE_WEIGHTS_H_

#include <cstdint>

namespace wcores {

constexpr int kMinNice = -20;
constexpr int kMaxNice = 19;

// Weight of a nice-0 thread; vruntime advances at wall speed for this weight.
constexpr uint32_t kNice0Weight = 1024;

// Weight corresponding to a nice value in [-20, 19].
uint32_t NiceToWeight(int nice);

// Inverse mapping used to convert real runtime to weighted vruntime:
// delta_vruntime = delta_exec * kNice0Weight / weight.
// 2^32 / weight precomputed, as in the kernel's sched_prio_to_wmult.
uint32_t NiceToInverseWeight(int nice);

}  // namespace wcores

#endif  // SRC_CORE_WEIGHTS_H_
