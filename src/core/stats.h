// Scheduler-internal event counters, for tests, benches, and ablations.
#ifndef SRC_CORE_STATS_H_
#define SRC_CORE_STATS_H_

#include <cstdint>

namespace wcores {

struct SchedStats {
  uint64_t forks = 0;
  uint64_t exits = 0;
  uint64_t wakeups = 0;
  uint64_t wakeups_on_prev = 0;       // Woke on the core it last used.
  uint64_t wakeups_on_idle = 0;       // Woke onto an idle core.
  uint64_t wakeups_on_busy = 0;       // Woke onto a core with running work.
  uint64_t balance_calls = 0;         // Algorithm 1 bodies executed.
  uint64_t balance_designation_skips = 0;  // Lines 7-8: not the designated core.
  uint64_t balance_interval_skips = 0;
  uint64_t balance_found_busiest = 0;
  uint64_t balance_below_local = 0;   // Line 15-16: busiest <= local.
  uint64_t balance_affinity_retries = 0;  // Lines 20-22: excluded a cpu.
  uint64_t balance_group_cache_hits = 0;    // Group stats served from the memo.
  uint64_t balance_group_cache_misses = 0;  // Group stats computed and cached.
  uint64_t balance_failures = 0;      // Nothing could be moved at all.
  uint64_t balance_success = 0;       // Algorithm-1 bodies that moved >= 1 thread.
  uint64_t balance_moved_tasks = 0;   // Threads moved by balancing, all kinds.
  uint64_t migrations_periodic = 0;
  uint64_t migrations_idle = 0;
  uint64_t migrations_nohz = 0;
  uint64_t migrations_hotplug = 0;
  uint64_t nohz_kicks = 0;
  uint64_t ticks = 0;
  uint64_t wake_policy_suggestions = 0;  // Modular wakeups taken as suggested.
  uint64_t wake_policy_vetoes = 0;       // Suggestions overridden by the core
                                         // to preserve work conservation.

  uint64_t TotalMigrations() const {
    return migrations_periodic + migrations_idle + migrations_nohz + migrations_hotplug;
  }
};

}  // namespace wcores

#endif  // SRC_CORE_STATS_H_
