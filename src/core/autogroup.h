// Autogroups (§2.2.1).
//
// Group scheduling brings fairness between groups of threads: when a thread
// belongs to a group, "its load is further divided by the total number of
// threads in its cgroup". The autogroup feature automatically assigns
// processes from different ttys to different groups. This division is the
// root cause of the Group Imbalance bug: a thread of a 64-thread `make` has
// a load ~64x smaller than a single-threaded R process at equal niceness.
#ifndef SRC_CORE_AUTOGROUP_H_
#define SRC_CORE_AUTOGROUP_H_

namespace wcores {

using AutogroupId = int;

// Group 0 always exists and is the root group (threads not assigned to any
// tty/container live there; its size still divides their load).
constexpr AutogroupId kRootAutogroup = 0;

struct Autogroup {
  AutogroupId id = kRootAutogroup;
  int nr_threads = 0;

  double divisor() const { return nr_threads > 1 ? static_cast<double>(nr_threads) : 1.0; }
};

}  // namespace wcores

#endif  // SRC_CORE_AUTOGROUP_H_
