// The scheduling entity: everything the scheduler knows about one thread.
#ifndef SRC_CORE_ENTITY_H_
#define SRC_CORE_ENTITY_H_

#include <cstdint>

#include "src/core/autogroup.h"
#include "src/core/pelt.h"
#include "src/core/rbtree.h"
#include "src/core/weights.h"
#include "src/simkit/cpuset.h"
#include "src/simkit/time.h"

namespace wcores {

using ThreadId = int;
constexpr ThreadId kInvalidThread = -1;

struct SchedEntity {
  ThreadId tid = kInvalidThread;

  // Weight / priority (§2.1): "a thread's weight is essentially its
  // priority, or niceness in UNIX parlance".
  int nice = 0;
  uint32_t weight = kNice0Weight;
  uint32_t inv_weight = 0;  // 2^32 / weight, for vruntime conversion.

  // Weighted virtual runtime; the runqueue key.
  Time vruntime = 0;

  // Accounting.
  Time exec_start = 0;        // Start of the current run segment.
  Time sum_exec_runtime = 0;  // Total CPU time ever consumed.
  Time slice_exec = 0;        // CPU time in the current timeslice.
  Time last_dequeued = 0;     // When it last left a runqueue.
  Time last_ran = 0;          // When it last stopped running (cache-hot test).

  // Latency accounting (src/telemetry/): when the entity last became
  // runnable (queued without running), when it was last woken, and when it
  // last became curr. `wakeup_pending` arms a one-shot wakeup->first-run
  // latency report at the next switch-in.
  Time queued_since = 0;
  Time last_wakeup = 0;
  Time switched_in_at = 0;
  bool wakeup_pending = false;

  // Load tracking: runnable fraction, decayed (see pelt.h).
  LoadTracker load;

  AutogroupId autogroup = kRootAutogroup;

  // taskset / numactl --cpunodebind mask.
  CpuSet affinity;

  // Runqueue this entity is on (when on_rq) or last ran on (when blocked).
  CpuId cpu = kInvalidCpu;

  bool on_rq = false;    // Runnable: queued in a tree or running as curr.
  bool running = false;  // Currently the curr of some cpu.

  RbNode rb;

  void SetNice(int n) {
    nice = n;
    weight = NiceToWeight(n);
    inv_weight = NiceToInverseWeight(n);
  }

  // delta_vruntime = delta_exec * kNice0Weight / weight, via the kernel's
  // fixed-point inverse: delta * (1024 * inv_weight) >> 32.
  Time DeltaExecToVruntime(Time delta_exec) const {
    if (weight == kNice0Weight) {
      return delta_exec;
    }
    // delta * 1024 * inv_weight / 2^32 == delta * inv_weight / 2^22.
    // 128-bit intermediate: delta (~2^40 for seconds) * inv_weight (~2^28).
    unsigned __int128 fact =
        static_cast<unsigned __int128>(delta_exec) * static_cast<uint64_t>(inv_weight);
    return static_cast<Time>(fact >> 22);
  }
};

// Runqueue ordering: increasing vruntime, thread id breaking ties so that
// the order (and hence the whole simulation) is deterministic.
struct EntityByVruntime {
  bool operator()(const SchedEntity& a, const SchedEntity& b) const {
    if (a.vruntime != b.vruntime) {
      return a.vruntime < b.vruntime;
    }
    return a.tid < b.tid;
  }
};

}  // namespace wcores

#endif  // SRC_CORE_ENTITY_H_
