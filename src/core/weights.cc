#include "src/core/weights.h"

#include <cassert>

namespace wcores {

namespace {

// kernel/sched/core.c sched_prio_to_weight.
constexpr uint32_t kPrioToWeight[40] = {
    /* -20 */ 88761, 71755, 56483, 46273, 36291,
    /* -15 */ 29154, 23254, 18705, 14949, 11916,
    /* -10 */ 9548,  7620,  6100,  4904,  3906,
    /*  -5 */ 3121,  2501,  1991,  1586,  1277,
    /*   0 */ 1024,  820,   655,   526,   423,
    /*   5 */ 335,   272,   215,   172,   137,
    /*  10 */ 110,   87,    70,    56,    45,
    /*  15 */ 36,    29,    23,    18,    15,
};

// kernel/sched/core.c sched_prio_to_wmult (2^32 / weight).
constexpr uint32_t kPrioToWmult[40] = {
    /* -20 */ 48388,     59856,     76040,     92818,     118348,
    /* -15 */ 147320,    184698,    229616,    287308,    360437,
    /* -10 */ 449829,    563644,    704093,    875809,    1099582,
    /*  -5 */ 1376151,   1717300,   2157191,   2708050,   3363326,
    /*   0 */ 4194304,   5237765,   6557202,   8165337,   10153587,
    /*   5 */ 12820798,  15790321,  19976592,  24970740,  31350126,
    /*  10 */ 39045157,  49367440,  61356676,  76695844,  95443717,
    /*  15 */ 119304647, 148102320, 186737708, 238609294, 286331153,
};

}  // namespace

uint32_t NiceToWeight(int nice) {
  assert(nice >= kMinNice && nice <= kMaxNice);
  return kPrioToWeight[nice - kMinNice];
}

uint32_t NiceToInverseWeight(int nice) {
  assert(nice >= kMinNice && nice <= kMaxNice);
  return kPrioToWmult[nice - kMinNice];
}

}  // namespace wcores
