// The multicore CFS scheduler: per-core runqueues, wakeup placement,
// hierarchical load balancing (§2.2), and the four bugs of §3 with their
// fixes behind SchedFeatures flags.
//
// The scheduler is a passive library: it never blocks and holds no clock.
// A driver (src/sim/simulator.h, or a unit test) calls into it at discrete
// instants, passing `now` explicitly, and receives asynchronous requests
// through SchedClient (kick an idle cpu that just received work, wake a
// tickless core to run NOHZ balancing).
//
// Division of labor with the driver:
//   - The driver decides *what* threads do (compute, sleep, lock, ...) and
//     for how long; it calls Tick() every tick_period on busy cores and
//     PickNext() at context-switch points.
//   - The scheduler decides *where and when* threads run: runqueue policy,
//     wakeup placement, balancing, hotplug migration.
#ifndef SRC_CORE_SCHEDULER_H_
#define SRC_CORE_SCHEDULER_H_

#include <deque>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "src/core/autogroup.h"
#include "src/core/cfs_rq.h"
#include "src/core/entity.h"
#include "src/core/features.h"
#include "src/core/stats.h"
#include "src/core/trace.h"
#include "src/core/wake_policy.h"
#include "src/simkit/cpuset.h"
#include "src/simkit/time.h"
#include "src/topo/domains.h"
#include "src/topo/topology.h"

namespace wcores {

// Implemented by the driver (simulator).
class SchedClient {
 public:
  virtual ~SchedClient() = default;

  // `cpu` must reschedule as soon as possible: either it was idle and now
  // has work, or its running thread should be preempted.
  virtual void KickCpu(CpuId cpu) = 0;

  // A tickless idle `cpu` has been designated NOHZ balancer; the driver
  // should invoke Scheduler::RunNohzBalance(cpu) at the current instant.
  virtual void NohzKick(CpuId cpu) = 0;
};

struct ThreadParams {
  int nice = 0;
  AutogroupId autogroup = kRootAutogroup;
  // Allowed cpus; empty means "all cpus".
  CpuSet affinity;
  // Fork placement: "Linux spawns threads on the same core as their parent
  // thread" (§3.2). kInvalidCpu places on the first allowed online cpu.
  CpuId parent_cpu = kInvalidCpu;
};

class SchedPolicy;

class Scheduler {
 public:
  // `policy` selects the scheduling policy (src/core/sched_policy.h); null
  // means CFS (the scheduler owns a CfsPolicy instance). A non-null policy
  // is borrowed and must outlive the scheduler; it must not be shared
  // across schedulers (policies hold per-machine state).
  Scheduler(const Topology& topo, const SchedFeatures& features, const SchedTunables& tunables,
            SchedClient* client, TraceSink* trace = nullptr, SchedPolicy* policy = nullptr);
  ~Scheduler();  // Out of line: owned_policy_ needs the complete SchedPolicy.

  const Topology& topology() const { return *topo_; }
  const SchedFeatures& features() const { return features_; }
  const SchedTunables& tunables() const { return tunables_; }

  // ---- Autogroups --------------------------------------------------------

  // One autogroup per tty / container process (§2.2.1).
  AutogroupId CreateAutogroup();

  // ---- Thread lifecycle ---------------------------------------------------

  // Creates a runnable thread and enqueues it (balance-on-fork is not
  // modeled; see DESIGN.md). Returns its ThreadId.
  ThreadId CreateThread(Time now, const ThreadParams& params);

  // The running thread on `cpu` exits. Driver must call PickNext() next.
  void ExitCurrent(Time now, CpuId cpu);

  // The running thread on `cpu` blocks (sleep, lock, I/O). Driver must call
  // PickNext() next.
  void BlockCurrent(Time now, CpuId cpu);

  // Wakes a blocked thread; runs the wakeup placement path (§3.3) and
  // enqueues it. `waker_cpu` is the core performing the wakeup (timer
  // expiry is delivered on the sleeper's former core). Returns the chosen
  // cpu. Kicks the target cpu via SchedClient if it was idle or preempted.
  CpuId Wake(Time now, ThreadId tid, CpuId waker_cpu);

  // ---- Per-cpu driver hooks -----------------------------------------------

  // Context switch: requeues the previously running thread if needed, picks
  // the leftmost entity, runs (new-)idle balancing when the queue is empty.
  // Returns the thread to run, or kInvalidThread if the cpu goes idle.
  ThreadId PickNext(Time now, CpuId cpu);

  // Periodic scheduler tick on a busy cpu: runtime accounting, preemption
  // check, periodic load balancing (Algorithm 1), NOHZ kick check.
  void Tick(Time now, CpuId cpu);

  // True if the driver should context-switch `cpu`.
  bool NeedResched(CpuId cpu) const { return cpus_[cpu].need_resched; }

  // Runs NOHZ balancing on a kicked tickless core: periodic balancing for
  // itself and on behalf of all tickless idle cores (§2.2.2).
  void RunNohzBalance(Time now, CpuId cpu);

  // ---- Hotplug (/proc-like interface, §3.4) --------------------------------

  // Disabling migrates all threads off `cpu` and regenerates scheduling
  // domains; with the Missing Scheduling Domains bug (stock), regeneration
  // drops all cross-NUMA levels. Re-enabling regenerates domains the same
  // (possibly buggy) way.
  void SetCpuOnline(Time now, CpuId cpu, bool online);
  bool IsOnline(CpuId cpu) const { return online_.Test(cpu); }
  CpuSet OnlineCpus() const { return online_; }

  // ---- Introspection (tools, tests, benches) -------------------------------

  int NrRunning(CpuId cpu) const { return nr_running_[cpu]; }
  bool IsIdleCpu(CpuId cpu) const { return nr_running_[cpu] == 0; }
  Time IdleSince(CpuId cpu) const { return idle_since_[cpu]; }
  bool IsTickless(CpuId cpu) const { return tickless_[cpu] != 0; }
  // Some online cpu holds >= 2 runnable threads. O(1): the runqueues keep
  // the count of overloaded cpus current through their stat slots, so
  // policies gating their balancers on overload (COREIDLE) pay a counter
  // read instead of an O(cpus) NrRunning sweep per gate.
  bool AnyCpuOverloaded() const { return overloaded_cpus_ > 0; }
  // The cpu Tick's NOHZ-kick check would select at this instant: the
  // lowest-id online tickless idle cpu, or kInvalidCpu. Served from the
  // per-node idle index; tests cross-check it against the linear scan it
  // replaced.
  CpuId NohzKickTarget() const;
  ThreadId CurrentThread(CpuId cpu) const;
  // Memoized per-cpu load; defined inline below the class so the balance
  // folds' dominant case — a memo hit — costs a few compares at the call
  // site instead of a cross-TU call per cpu per group.
  double RqLoad(Time now, CpuId cpu) const;
  // From-scratch recomputation bypassing the RqLoad memo cache; the fuzzer
  // cross-checks the cached value against it.
  double RqLoadRecomputed(Time now, CpuId cpu) const;
  // Every entry of the balancer's group-stats memo matches a from-scratch
  // recomputation at `now` (vacuously true if the memo is stale, since a
  // stale memo is flushed before reuse). Fuzzer cross-check, like
  // RqLoadRecomputed for the RqLoad memo.
  bool ValidateGroupCache(Time now) const;
  // The per-node idle index is structurally sound and lists exactly the
  // online tickless cpus, in (idle_since, cpu) order. Fuzzer cross-check,
  // like ValidateGroupCache for the group-stats memo.
  bool ValidateIdleIndex() const;
  // The balance-due wheel matches a from-scratch recomputation: per-cpu due
  // minima over the domain intervals, cached designation bits (when their
  // generation is current), the write-through nr_running/load_version
  // mirrors, the overloaded-cpu count, and the NOHZ wheel's lower-bound /
  // sum invariants. Fuzzer cross-check, like ValidateIdleIndex.
  bool ValidateBalanceWheel() const;
  Time MinVruntime(CpuId cpu) const { return cpus_[cpu].rq.min_vruntime(); }
  // Runqueue structural invariants (test support; see CfsRunqueue).
  bool ValidateRq(CpuId cpu) const { return cpus_[cpu].rq.ValidateInvariants(); }
  const DomainTree& Domains(CpuId cpu) const { return cpus_[cpu].domains; }
  const SchedEntity& Entity(ThreadId tid) const { return entities_[tid]; }
  SchedEntity& MutableEntity(ThreadId tid) { return entities_[tid]; }
  int ThreadCount() const { return static_cast<int>(entities_.size()); }
  const SchedStats& stats() const { return stats_; }
  SchedStats& mutable_stats() { return stats_; }

  // The sanity checker's can_steal(idle, busy): some thread queued on
  // `busy_cpu` is allowed to run on `idle_cpu`.
  bool CanSteal(CpuId idle_cpu, CpuId busy_cpu) const;

  // The longest-idle online cpu within `allowed`, or kInvalidCpu.
  CpuId LongestIdleCpu(const CpuSet& allowed) const;

  // Re-resolves the autogroup divisor for load computations.
  double AutogroupDivisor(AutogroupId id) const;

  // Mid-run feature toggling (the ablation driver flips fixes while a
  // scenario runs). Bumps the feature generation so every memoized value
  // derived from the flags — autogroup divisors feed RqLoad, and group stats
  // build on it — is invalidated instead of served stale. Domain
  // construction flags take effect at the next rebuild (hotplug), as in the
  // kernel.
  void UpdateFeatures(const SchedFeatures& features);
  uint64_t feature_generation() const { return feature_gen_; }

  // Renices a thread mid-run; routes through its runqueue when runnable so
  // the load-version machinery sees the weight change.
  void SetNice(Time now, ThreadId tid, int nice);

  // ---- Modular scheduling (§5's vision; see src/modsched/) ------------------

  // Attaches an optimization module for wakeup placement. Suggestions are
  // honored only when they keep the work-conserving invariant: a busy
  // suggestion while an allowed core sits idle is overridden to the
  // longest-idle core (counted in stats().wake_policy_vetoes).
  void set_wake_policy(WakePolicy* policy) { wake_policy_ = policy; }
  WakePolicy* wake_policy() const { return wake_policy_; }

  // ---- Policy arena (src/core/sched_policy.h) -------------------------------

  SchedPolicy* policy() const { return policy_; }

  // Mechanism building blocks for SchedPolicy implementations: each is the
  // CFS behavior of the corresponding hook, callable piecemeal so a policy
  // can inherit the parts it does not replace (the COREIDLE policy gates
  // these balancers on overload; the O(1) policy reuses them wholesale).
  CpuId CfsSelectWakeCpu(Time now, const SchedEntity& se, CpuId waker_cpu, CpuSet* considered) {
    return SelectTaskRq(now, se, waker_cpu, considered);
  }
  CpuId CfsForkCpu(const SchedEntity& se, CpuId parent_cpu) const;
  SchedEntity* QueuedLeftmost(CpuId cpu) { return cpus_[cpu].rq.PeekLeftmost(); }
  bool CfsTickPreempt(CpuId cpu) const { return cpus_[cpu].rq.CheckPreemptTick(); }
  bool CfsWakeupPreempts(Time now, CpuId cpu, const SchedEntity& woken) const {
    return cpus_[cpu].rq.CheckPreemptWakeup(woken, now);
  }
  void CfsPeriodicBalance(Time now, CpuId cpu);
  void CfsIdleBalance(Time now, CpuId cpu) { IdleBalance(now, cpu); }
  void CfsNohzBalance(Time now, CpuId cpu);

  // Visits the queued (not running) entities of `cpu` in vruntime order.
  template <typename Visitor>
  void ForEachQueuedOn(CpuId cpu, Visitor&& visit) const {
    cpus_[cpu].rq.ForEachQueued(visit);
  }

 private:
  // Per-cpu state that is *not* read by balance folds. Everything a group
  // stats pass or a due check streams over lives in the dense parallel
  // arrays below (structure-of-arrays): a deque<Cpu> element is hundreds of
  // bytes of runqueue, so folding nr_running/load/idle state through it
  // pointer-chases one cache line per cpu, while the arrays put eight
  // members' worth of each field on a line or two.
  struct Cpu {
    Cpu(CpuId id, const SchedTunables* tunables, uint64_t* shared_load_epoch)
        : rq(id, tunables, shared_load_epoch) {}

    CfsRunqueue rq;
    bool need_resched = false;
    Time last_nohz_kick = 0;
    DomainTree domains;

    // Last values reported to the trace sink (report-on-change).
    int last_nr_reported = -1;
    double last_load_reported = -1.0;
  };

  // Per-cpu balance-due wheel entry: the tick/NOHZ interval checks reduced
  // to precomputed minima over this cpu's domains. all_* is the min of
  // last_balance + interval over ALL domains (busy = interval stretched by
  // busy_balance_factor, idle = base interval) — pure integer time
  // arithmetic over the exact inputs the walk reads, so "now < all_busy"
  // holds iff every domain would interval-skip. fire_* additionally drops
  // domains whose cached designation says another cpu balances them, so
  // "now < fire_busy" (under a current desig generation) means no domain
  // would actually fire: the walk degenerates to skip accounting.
  //
  // Designation bits are filled lazily by the slow-path walk (only for
  // domains whose interval check it passed; the rest stay unknown and are
  // conservatively treated as would-fire) and are valid while the owning
  // node's idle generation is unchanged: DesignatedCpu is a pure function
  // of topology, the online mask, and the idleness of this cpu's node
  // (its balance mask never leaves the node), and every idle flip bumps
  // the node generation in UpdateIdleState.
  struct BalanceWheel {
    Time all_busy = 0;
    Time all_idle = 0;
    Time fire_busy = 0;
    Time fire_idle = 0;
    uint32_t desig_known = 0;  // Bit per domain level: designation cached.
    uint32_t desig_self = 0;   // Valid where desig_known: this cpu fires it.
    uint64_t desig_gen = 0;    // node_idle_gen_ snapshot for the bits.
    int ndom = 0;
  };

  // Aggregate load/occupancy of one scheduling group (Algorithm 1 lines
  // 10-12): the inputs to busiest-group selection.
  struct GroupLoadStats {
    double sum_load = 0;
    double min_load = std::numeric_limits<double>::infinity();
    int n_cpus = 0;
    int nr_running = 0;
    bool imbalanced = false;

    double AvgLoad() const { return n_cpus > 0 ? sum_load / n_cpus : 0.0; }
    double MinLoad() const { return n_cpus > 0 ? min_load : 0.0; }
    bool Overloaded() const { return nr_running > n_cpus; }

    // Busiest-selection rank (line 13): overloaded groups first, then groups
    // marked imbalanced by failed affinity moves, then the rest.
    int Rank() const {
      if (Overloaded()) {
        return 2;
      }
      if (imbalanced) {
        return 1;
      }
      return 0;
    }
  };

  // One group-stats memo entry (see group_cache_ below): the cached
  // aggregate plus a snapshot of everything it depends on, so validity can
  // be decided per entry instead of flushing the whole cache whenever any
  // epoch moves.
  struct GroupCacheEntry {
    CpuSet cpus;
    GroupLoadStats stats;
    Time filled_at = kTimeNever;
    uint64_t balance_epoch = 0;
    uint64_t ag_epoch = 0;
    uint64_t feature_gen = 0;
    uint64_t topo_epoch = 0;
    uint64_t imb_epoch = 0;
    // Exact decay-forward (DESIGN.md §balancing): every member runqueue's
    // loads were constant from filled_at on, so sum/min stay bit-identical
    // at later instants while the member versions still match.
    bool all_const = false;
    uint64_t member_version_sum = 0;
  };

  // The stats of `cpus` minus `excluded`, straight from the runqueues.
  GroupLoadStats ComputeGroupStats(Time now, const CpuSet& cpus, const CpuSet& excluded) const;

  // The group cache accessor: serves `cpus`' stats from group_cache_ when a
  // live entry exists (GroupEntryLive), refilling the entry otherwise. The
  // only sanctioned way for balancing code to aggregate per-entity loads;
  // wc-lint rule D6 flags direct per-entity reads in scheduler_balance.cc.
  // `slot_hint` (SchedGroup::stats_slot) caches the entry index across
  // passes; pass nullptr to force a key scan.
  GroupLoadStats GroupStats(Time now, const CpuSet& cpus, int* slot_hint = nullptr);

  // Entry validity at `now`: all epoch snapshots current, and either nothing
  // anywhere changed since a same-instant fill, or the entry rolls forward
  // exactly (all_const) and no member runqueue changed membership/weights.
  bool GroupEntryLive(const GroupCacheEntry& e, Time now) const;

  // Sum of the online members' runqueue load versions. Versions only
  // increase, so an unchanged sum means no member changed.
  uint64_t MemberVersionSum(const CpuSet& cpus) const;

  // Wakeup placement; fills `considered` for the visualization tool.
  CpuId SelectTaskRq(Time now, const SchedEntity& se, CpuId waker_cpu, CpuSet* considered);

  // Stock path: wake_affine between prev/waker node + select_idle_sibling
  // within that node only (the Overload-on-Wakeup bug, §3.3).
  CpuId SelectTaskRqStock(Time now, const SchedEntity& se, CpuId waker_cpu, CpuSet* considered);

  // One Algorithm-1 body for (cpu, domain). Returns #threads moved.
  int BalanceDomain(Time now, CpuId cpu, SchedDomain& sd, ConsideredKind kind);

  // Lines 2-9 of Algorithm 1: the core designated to balance `sd` on behalf
  // of its local group — the first idle cpu of the group's balance mask
  // (the seed node's cores for multi-node groups), else its first cpu.
  CpuId DesignatedCpu(CpuId cpu, const SchedDomain& sd) const;

  // Pulls from src_cpu into dst_cpu up to `max_load`; moves at least one
  // allowed thread if `force_min_one`. Returns #threads moved.
  int MoveTasks(Time now, CpuId src_cpu, CpuId dst_cpu, double max_load, bool force_min_one,
                MigrationReason reason);

  // (New-)idle balancing when a cpu runs out of work.
  void IdleBalance(Time now, CpuId cpu);

  // Asks the policy for the next entity on `cpu` and dequeues it into curr;
  // null when the policy has nothing to run there.
  SchedEntity* PickEntityOn(Time now, CpuId cpu);

  void EnqueueWake(Time now, SchedEntity* se, CpuId cpu);
  void UpdateIdleState(Time now, CpuId cpu);
  // Idle-index maintenance. Insert keeps the node list sorted by
  // (idle_since, cpu); callers uphold the invariant "in the index iff
  // online && tickless".
  void IdleIndexInsert(CpuId cpu);
  void IdleIndexRemove(CpuId cpu);
  void RebuildDomains();

  // ---- Balance-due wheel maintenance (see BalanceWheel above) -------------

  // The slow path shared by CfsPeriodicBalance and CfsNohzBalance: the
  // original per-domain walk (interval check, lazy designation, balance),
  // recording designation bits into the wheel as they are computed. Exactly
  // the pre-wheel loop body — the wheel's fast paths only run when this
  // would have been pure skip accounting.
  void BalanceDomainsWalk(Time now, CpuId cpu, bool busy, ConsideredKind kind);

  // Recomputes wheel_[cpu]'s due minima from its domain tree (designation
  // bits untouched; fire minima re-derived from the current bits).
  void RecomputeWheelDues(CpuId cpu);

  // Recomputes the NOHZ wheel (nohz_all_due_, idle_ndom_sum_) exactly from
  // the idle index. Called after every NOHZ slow pass and on rebuilds; in
  // between, IdleIndexInsert/Remove maintain idle_ndom_sum_ incrementally
  // and keep nohz_all_due_ a conservative lower bound.
  void RecomputeNohzGlobals();

  // RqLoad's miss path: folds the runqueue (LoadAt) and refills the memo.
  // Out of line so the inline hit path stays a handful of compares.
  double RqLoadFill(Time now, CpuId cpu) const;
  CpuId FirstAllowedOnline(const CpuSet& affinity) const;
  void NotifyNrRunning(Time now, CpuId cpu);
  void NotifyLoad(Time now, CpuId cpu);

  const Topology* topo_;
  SchedFeatures features_;
  SchedTunables tunables_;
  SchedClient* client_;
  TraceSink* trace_;  // Never null; defaults to a no-op sink.
  WakePolicy* wake_policy_ = nullptr;
  SchedPolicy* policy_ = nullptr;              // Never null after construction.
  std::unique_ptr<SchedPolicy> owned_policy_;  // Set iff no policy was passed in.

  std::deque<Cpu> cpus_;  // deque: Cpu is neither copyable nor movable.
  CpuSet online_;

  // ---- Structure-of-arrays balance stats ----------------------------------
  // The per-cpu fields every balance fold streams over, as dense parallel
  // arrays indexed by CpuId (sized once in the constructor, never
  // reallocated). nr_running_ and load_version_ are write-through mirrors
  // owned by the runqueues (CfsRunqueue::set_stat_slots): every mutator
  // updates the mirror in the same statement as the source of truth, so the
  // arrays are exact, not eventually-consistent.
  std::vector<int> nr_running_;        // == cpus_[c].rq.nr_running().
  std::vector<uint64_t> load_version_; // == cpus_[c].rq.load_version().
  std::vector<uint8_t> tickless_;      // Idle and not receiving ticks.
  std::vector<uint8_t> imbalanced_;    // A steal from this rq failed on affinity.
  std::vector<Time> idle_since_;       // Valid while nr_running_[c] == 0.
  // Intrusive links of the per-node idle index (see idle_head_ below).
  std::vector<CpuId> idle_prev_;
  std::vector<CpuId> idle_next_;

  // RqLoad memo (see Scheduler::RqLoad), SoA: the last computed load per
  // cpu, valid while the query instant, the runqueue membership version,
  // the autogroup epoch, and the feature generation all still match — or,
  // when load_cache_const_ is set, at *any later* instant under the same
  // version/epochs: every member tracker was constant from load_cache_now_
  // on (LoadTracker::ConstantFrom), so the cached sum is exactly what a
  // recomputation would produce. mutable because RqLoad is logically const.
  mutable std::vector<Time> load_cache_now_;
  mutable std::vector<uint64_t> load_cache_version_;
  mutable std::vector<uint64_t> load_cache_epoch_;
  mutable std::vector<uint64_t> load_cache_feat_;
  mutable std::vector<uint8_t> load_cache_const_;
  mutable std::vector<double> load_cache_value_;

  // Count of online cpus with nr_running_ >= 2, maintained by the
  // runqueues' write-through SyncNr (offline cpus are evacuated to empty,
  // so "online" needs no separate filter). Backs AnyCpuOverloaded().
  int overloaded_cpus_ = 0;

  // ---- Balance-due wheel state --------------------------------------------
  std::vector<BalanceWheel> wheel_;

  // Per-node idle generation: bumped on every tickless flip of a cpu of the
  // node (UpdateIdleState) and on every domain rebuild (all nodes). The
  // validity key for BalanceWheel designation bits: DesignatedCpu(c, sd)
  // reads only node-local idleness, the online mask, and the domain
  // structure, all of which bump the generation when they change.
  std::vector<uint64_t> node_idle_gen_;

  // NOHZ wheel: a conservative monotone-stale lower bound on
  // min(wheel_[x].all_idle) over the idle-index members. Sound because dues
  // only move forward in time: IdleIndexInsert min-folds the newcomer in,
  // removals and balance firings leave it stale-but-<=-true-min, and each
  // NOHZ slow pass / rebuild recomputes it exactly (RecomputeNohzGlobals).
  // "now < nohz_all_due_" therefore proves every delegated cpu would
  // interval-skip every domain.
  Time nohz_all_due_ = 0;
  // Sum of wheel_[x].ndom over idle-index members: the bulk
  // balance_interval_skips increment the NOHZ fast path owes, maintained
  // incrementally in IdleIndexInsert/Remove.
  int idle_ndom_sum_ = 0;

  // Incremental idle-CPU index: one intrusive doubly-linked list per NUMA
  // node (links in idle_prev_/idle_next_), sorted ascending by
  // (idle_since, cpu) — the same total order the old linear scan minimized —
  // holding exactly the online tickless cpus. LongestIdleCpu walks each
  // node's list to its first allowed entry instead of scanning the whole
  // machine; every wakeup on a mostly-busy machine goes from O(cpus) to
  // O(nodes + idle). Maintained in UpdateIdleState and hotplug; inserts walk
  // back from the tail, which is O(1) in practice because a cpu going idle
  // *now* has the largest key of its node. The fuzzer audits membership and
  // order against recomputation (ValidateIdleIndex).
  std::vector<CpuId> idle_head_;
  std::vector<CpuId> idle_tail_;

  std::deque<SchedEntity> entities_;  // Indexed by tid; stable addresses.
  std::vector<Autogroup> autogroups_;
  // Advances whenever any autogroup's divisor may change (nr_threads
  // mutation); part of the RqLoad memo key.
  uint64_t ag_epoch_ = 0;

  // Advances whenever any input to GroupLoadStats other than (now, ag_epoch_)
  // changes: any runqueue membership change (bumped by the runqueues through
  // their shared_load_epoch pointer), any imbalanced_ flip, and hotplug.
  uint64_t balance_epoch_ = 0;

  // Finer-grained slices of balance_epoch_, so cross-instant group entries
  // need not die with every unrelated runqueue change: hotplug (group
  // membership / n_cpus) and imbalanced_ flips, respectively.
  uint64_t topo_epoch_ = 0;
  uint64_t imb_epoch_ = 0;

  // Advances on UpdateFeatures: flags feed autogroup divisors (and thereby
  // every cached load), so the memos key on it.
  uint64_t feature_gen_ = 0;

  // Group-stats memo for BalanceDomain, mirroring the RqLoad memo one level
  // up: groups with identical cpu sets recur across the domain trees of
  // different cores (every top-level domain lists the same node groups), and
  // NOHZ balancing walks many trees at one instant. Each entry snapshots all
  // of its inputs (GroupCacheEntry), so validity is per entry: a same-instant
  // entry is served while nothing changed, and an all-const entry — every
  // member load constant from the fill instant on — is served at *later*
  // instants too, as long as no member runqueue's version moved. That
  // cross-instant case is what makes caching pay on newidle balancing, where
  // every pass runs at a fresh instant: the groups the triggering context
  // switch did not touch roll forward exactly instead of being re-aggregated
  // per entity. Only stats of the full machine state are cached (balancing
  // passes with a non-empty excluded set bypass the memo). A flat vector
  // with linear lookup and one slot per distinct cpu set, not a map: a
  // machine holds at most a handful of distinct groups, and slot reuse means
  // steady-state caching allocates nothing. mutable for symmetry with the
  // RqLoad memo: ValidateGroupCache reads it from const context.
  mutable std::vector<GroupCacheEntry> group_cache_;
  // group_cache_[k]'s cpu set, duplicated into a dense vector so the
  // per-lookup scan stays within a few cache lines (GroupStats).
  mutable std::vector<CpuSet> group_cache_keys_;

  // Scratch for BalanceDomain's per-group stats. Balancing never nests and
  // the scheduler is single-threaded, so one buffer reused across calls
  // keeps the newidle hot path free of per-pass heap allocation.
  std::vector<GroupLoadStats> balance_stats_scratch_;

  // Same contract for the remaining per-pass temporaries: MoveTasks'
  // candidate/cache-hot partitions and hotplug's evacuee list. Reused
  // across calls (clear(), never shrink), so steady-state balancing and
  // hotplug churn allocate nothing.
  std::vector<SchedEntity*> move_candidates_scratch_;
  std::vector<SchedEntity*> move_hot_scratch_;
  std::vector<SchedEntity*> evacuees_scratch_;

  SchedStats stats_;

  static TraceSink* NullSink();
};

// Memoized exactly, so the cached value is bit-identical to a recompute:
// the key covers everything LoadAt reads. Membership and weight changes
// bump rq.load_version(); divisor changes bump ag_epoch_ or feature_gen_;
// and a member tracker's SetState/Advance at the same instant leaves
// ValueAt(now) unchanged (decay only accrues across instants), so same
// (now, version, epochs) implies the same sum.
//
// Cross-instant: when load_cache_const is set, every member tracker was
// constant from load_cache_now on (LoadTracker::ConstantFrom), so under an
// unchanged version the sum at any later instant is the same doubles
// folded in the same order — serve the cached value. The one tracker
// mutation without a version bump, Tick's Advance on curr, cannot break
// this: Advance of a constant tracker lands on avg == 1.0 and preserves
// constancy, and a non-constant curr at fill time made load_cache_const
// false to begin with.
inline double Scheduler::RqLoad(Time now, CpuId cpu) const {
  if (load_cache_version_[cpu] == load_version_[cpu] && load_cache_epoch_[cpu] == ag_epoch_ &&
      load_cache_feat_[cpu] == feature_gen_ &&
      (load_cache_now_[cpu] == now ||
       (load_cache_const_[cpu] != 0 && now > load_cache_now_[cpu]))) {
    return load_cache_value_[cpu];
  }
  return RqLoadFill(now, cpu);
}

}  // namespace wcores

#endif  // SRC_CORE_SCHEDULER_H_
