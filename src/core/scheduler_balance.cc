// Hierarchical load balancing: Algorithm 1 of the paper, plus (new-)idle
// balancing. The Group Imbalance bug/fix of §3.1 lives in the group metric.
#include <algorithm>
#include <cassert>
#include <vector>

#include "src/core/scheduler.h"

namespace wcores {

Scheduler::GroupLoadStats Scheduler::ComputeGroupStats(Time now, const CpuSet& cpus,
                                                       const CpuSet& excluded) const {
  GroupLoadStats gs;
  for (CpuId c : cpus) {
    if (!online_.Test(c) || excluded.Test(c)) {
      continue;
    }
    double load = RqLoad(now, c);
    gs.sum_load += load;
    gs.min_load = std::min(gs.min_load, load);
    gs.n_cpus += 1;
    gs.nr_running += nr_running_[c];
    gs.imbalanced = gs.imbalanced || imbalanced_[c] != 0;
  }
  return gs;
}

uint64_t Scheduler::MemberVersionSum(const CpuSet& cpus) const {
  uint64_t sum = 0;
  for (CpuId c : cpus) {
    if (online_.Test(c)) {
      sum += load_version_[c];
    }
  }
  return sum;
}

bool Scheduler::GroupEntryLive(const GroupCacheEntry& e, Time now) const {
  if (e.ag_epoch != ag_epoch_ || e.feature_gen != feature_gen_ || e.topo_epoch != topo_epoch_ ||
      e.imb_epoch != imb_epoch_) {
    return false;
  }
  if (now == e.filled_at && e.balance_epoch == balance_epoch_) {
    return true;  // Nothing anywhere changed since the fill: O(1) accept.
  }
  // The global epoch moved (or the instant did). The entry is still exact
  // iff no *member* runqueue changed — versions only grow, so an unchanged
  // sum pins every member — and, across instants, the member loads were
  // constant from the fill instant on (all_const), i.e. the decay-forward
  // factor is exactly 1.0. Same-instant entries need no constancy: decay
  // has not accrued.
  if (now < e.filled_at || (now > e.filled_at && !e.all_const)) {
    return false;
  }
  return MemberVersionSum(e.cpus) == e.member_version_sum;
}

bool Scheduler::ValidateGroupCache(Time now) const {
  for (const GroupCacheEntry& e : group_cache_) {
    if (!GroupEntryLive(e, now)) {
      continue;  // Dead entries are never served; nothing to check.
    }
    GroupLoadStats fresh = ComputeGroupStats(now, e.cpus, CpuSet{});
    // Exact comparison on purpose: a memo must be bit-identical to the
    // recomputation it stands in for, or the golden trace hashes drift.
    // wc-lint: allow(D4 coherence check that the memo IS the recomputation, not a decision)
    if (fresh.sum_load != e.stats.sum_load || fresh.min_load != e.stats.min_load ||
        fresh.n_cpus != e.stats.n_cpus || fresh.nr_running != e.stats.nr_running ||
        fresh.imbalanced != e.stats.imbalanced) {
      return false;
    }
  }
  return true;
}

Scheduler::GroupLoadStats Scheduler::GroupStats(Time now, const CpuSet& cpus, int* slot_hint) {
  // Slot lookup: the caller's hint first (O(1) in steady state — entries
  // are never erased, so indices stay valid and only a domain rebuild can
  // stale a hint), then a scan of the dense key vector rather than the ~5x
  // larger entries. With one persistent slot per distinct group cpu set
  // (every singleton plus every node on a big machine), this lookup runs
  // on every group of every newidle pass.
  size_t idx = group_cache_keys_.size();
  if (slot_hint != nullptr && *slot_hint >= 0 &&
      static_cast<size_t>(*slot_hint) < group_cache_keys_.size() &&
      group_cache_keys_[static_cast<size_t>(*slot_hint)] == cpus) {
    idx = static_cast<size_t>(*slot_hint);
  } else {
    for (size_t k = 0; k < group_cache_keys_.size(); ++k) {
      if (group_cache_keys_[k] == cpus) {
        idx = k;
        break;
      }
    }
  }
  GroupCacheEntry* slot = idx < group_cache_.size() ? &group_cache_[idx] : nullptr;
  if (slot != nullptr && GroupEntryLive(*slot, now)) {
    stats_.balance_group_cache_hits += 1;
    if (slot_hint != nullptr) {
      *slot_hint = static_cast<int>(idx);
    }
    return slot->stats;
  }
  stats_.balance_group_cache_misses += 1;
  if (slot == nullptr) {
    idx = group_cache_.size();
    // wc-lint: allow(A2 one-time fill per distinct group cpu-set; steady state always hits)
    group_cache_.emplace_back();
    // wc-lint: allow(A2 grows with group_cache_, bounded by distinct domain groups)
    group_cache_keys_.push_back(cpus);
    slot = &group_cache_.back();
    slot->cpus = cpus;
  }
  if (slot_hint != nullptr) {
    *slot_hint = static_cast<int>(idx);
  }
  GroupCacheEntry& e = *slot;
  // Same member walk (and float fold order) as ComputeGroupStats, fused with
  // the constancy/version snapshot. RqLoad leaves load_cache_const accurate
  // for `now` on both fill and hit paths.
  e.stats = GroupLoadStats{};
  bool all_const = true;
  uint64_t version_sum = 0;
  for (CpuId c : cpus) {
    if (!online_.Test(c)) {
      continue;
    }
    double load = RqLoad(now, c);
    e.stats.sum_load += load;
    e.stats.min_load = std::min(e.stats.min_load, load);
    e.stats.n_cpus += 1;
    e.stats.nr_running += nr_running_[c];
    e.stats.imbalanced = e.stats.imbalanced || imbalanced_[c] != 0;
    all_const = all_const && load_cache_const_[c] != 0;
    version_sum += load_version_[c];
  }
  e.filled_at = now;
  e.balance_epoch = balance_epoch_;
  e.ag_epoch = ag_epoch_;
  e.feature_gen = feature_gen_;
  e.topo_epoch = topo_epoch_;
  e.imb_epoch = imb_epoch_;
  e.all_const = all_const;
  e.member_version_sum = version_sum;
  return e.stats;
}

int Scheduler::BalanceDomain(Time now, CpuId cpu, SchedDomain& sd, ConsideredKind kind) {
  stats_.balance_calls += 1;

  // The metric that compares groups. Stock kernels compare *average* loads,
  // which lets one high-load thread conceal idle cores on its node — the
  // Group Imbalance bug. The fix compares the *minimum* loads: if some core
  // in another group is busier than every core in ours is idle-ish, steal.
  auto metric = [&](const GroupLoadStats& gs) {
    return features_.fix_group_imbalance ? gs.MinLoad() : gs.AvgLoad();
  };

  MigrationReason reason = kind == ConsideredKind::kPeriodicBalance
                               ? MigrationReason::kPeriodicBalance
                               : (kind == ConsideredKind::kIdleBalance
                                      ? MigrationReason::kIdleBalance
                                      : MigrationReason::kNohzBalance);

  // Cpus proven useless as sources this pass (tasksets, Algorithm 1 lines
  // 20-22). When a whole busiest group is excluded, group selection redoes
  // without it — the kernel's LBF_ALL_PINNED "redo" path.
  CpuSet excluded;

  // Lines 10-12: average (and minimum) load of every scheduling group,
  // computed once per call.
  //
  // Memoized through the group cache accessor (GroupStats): when NOHZ
  // balancing walks every idle core's domain tree at one instant, each
  // distinct group cpu set — and top-level trees share all of theirs — is
  // aggregated once instead of once per tree; and newidle passes, which
  // each run at a fresh instant after one runqueue changed, serve every
  // group the context switch did *not* touch from its all-const entry
  // (exact decay-forward; see GroupEntryLive) instead of re-walking the
  // entities.
  //
  // Redo passes (the kernel's LBF_ALL_PINNED path) do NOT refold: within
  // one call, cpus are only ever excluded from the *busiest* group — the
  // src loop picks sources there, and group exhaustion excludes its
  // remainder — and groups partition the domain, so every other group's
  // refold under the exclusion would reproduce the same member loads folded
  // in the same order, bit-identically. Zeroing the exhausted group's slot
  // in place (n_cpus == 0 groups are never selected) therefore leaves every
  // later comparison, counter, and steal decision exactly as the refold
  // would have, at O(groups) per redo instead of O(domain cpus).
  std::vector<GroupLoadStats>& stats = balance_stats_scratch_;
  stats.assign(sd.groups.size(), GroupLoadStats{});
  for (size_t g = 0; g < sd.groups.size(); ++g) {
    // Singleton groups (every bottom-level group is one cpu) fold straight
    // off the per-cpu memo: the group-cache fold over a one-member set is
    // exactly {load, load, 1, nr, imb} — or the all-default stats when the
    // member is offline — so the cache adds lookup cost and nothing else.
    CpuId solo = sd.groups[g].solo;
    if (solo != kInvalidCpu) {
      if (online_.Test(solo)) {
        double load = RqLoad(now, solo);
        GroupLoadStats& gs = stats[g];
        gs.sum_load = load;
        gs.min_load = load;
        gs.n_cpus = 1;
        gs.nr_running = nr_running_[solo];
        gs.imbalanced = imbalanced_[solo] != 0;
      }
      continue;
    }
    stats[g] = GroupStats(now, sd.groups[g].cpus, &sd.groups[g].stats_slot);
  }
  // The cores examined: every online member of every group. Folded once
  // per domain rebuild, not once per pass — see considered_cache.
  if (!sd.considered_cached) {
    for (const SchedGroup& grp : sd.groups) {
      sd.considered_cache |= grp.cpus & online_;
    }
    sd.considered_cached = true;
  }
  trace_->OnConsidered(now, cpu, sd.considered_cache, kind);

  for (;;) {
    int excluded_at_pass_start = excluded.Count();

    // Line 13: the busiest group, preferring overloaded then imbalanced ones.
    int local = sd.local_group;
    int busiest = -1;
    for (int g = 0; g < static_cast<int>(stats.size()); ++g) {
      if (g == local || stats[g].n_cpus == 0) {
        continue;
      }
      if (busiest < 0 || stats[g].Rank() > stats[busiest].Rank() ||
          (stats[g].Rank() == stats[busiest].Rank() &&
           metric(stats[g]) > metric(stats[busiest]))) {
        busiest = g;
      }
    }
    if (busiest < 0) {
      return 0;
    }

    // Lines 15-16: if the busiest group does not beat ours, the load is
    // considered balanced at this level.
    if (metric(stats[busiest]) <= metric(stats[local])) {
      stats_.balance_below_local += 1;
      return 0;
    }
    stats_.balance_found_busiest += 1;

    // Lines 18-23: steal from the busiest cpu of the busiest group; retry
    // with the next busiest when tasksets prevent any move.
    double this_load = RqLoad(now, cpu);
    bool group_exhausted = false;
    for (;;) {
      CpuId src = kInvalidCpu;
      double src_load = 0;
      for (CpuId c : sd.groups[busiest].cpus) {
        if (c == cpu || excluded.Test(c) || !online_.Test(c)) {
          continue;
        }
        // Nothing stealable (curr cannot be migrated). Screened through the
        // dense nr mirror first: nr == 0 means an empty tree and nr >= 2
        // guarantees a queued entity (at most one curr), so only nr == 1 —
        // where curr-only and one-queued look alike — needs to dereference
        // the runqueue.
        int nr = nr_running_[c];
        if (nr < 1 || (nr == 1 && cpus_[c].rq.queued() < 1)) {
          continue;
        }
        double load = RqLoad(now, c);
        if (src == kInvalidCpu || load > src_load) {
          src = c;
          src_load = load;
        }
      }
      if (src == kInvalidCpu) {
        group_exhausted = true;
        break;
      }

      double imbalance = (src_load - this_load) / 2.0;
      bool force_min_one = nr_running_[cpu] == 0 && nr_running_[src] >= 2;
      if (imbalance <= 0 && !force_min_one) {
        stats_.balance_failures += 1;
        return 0;
      }

      int moved = MoveTasks(now, src, cpu, imbalance, force_min_one, reason);
      if (moved > 0) {
        if (imbalanced_[src] != 0) {
          imbalanced_[src] = 0;
          balance_epoch_ += 1;
          imb_epoch_ += 1;
        }
        stats_.balance_success += 1;
        stats_.balance_moved_tasks += static_cast<uint64_t>(moved);
        return moved;
      }
      // Lines 20-22: the busiest cpu's threads are pinned elsewhere; mark
      // the source imbalanced (so its group is favoured by cores that *can*
      // help) and retry with the next busiest cpu.
      if (cpus_[src].rq.queued() >= 1 && !cpus_[src].rq.HasStealableFor(cpu) &&
          imbalanced_[src] == 0) {
        imbalanced_[src] = 1;
        balance_epoch_ += 1;
        imb_epoch_ += 1;
      }
      stats_.balance_affinity_retries += 1;
      excluded.Set(src);
    }
    if (group_exhausted) {
      // Exclude what remains of this group and redo group selection. Each
      // redo shrinks the candidate set, so this terminates; a group with
      // every cpu excluded has n_cpus == 0 and is never selected again.
      for (CpuId c : sd.groups[busiest].cpus) {
        if (c != cpu && online_.Test(c)) {
          excluded.Set(c);
        }
      }
      if (excluded.Count() == excluded_at_pass_start) {
        // Sterile pass: nothing new to exclude, nothing movable.
        stats_.balance_failures += 1;
        return 0;
      }
      // Redo group selection without the exhausted group (see the stats
      // comment above: disjointness makes dropping its slot bit-identical
      // to refolding every group under the exclusion).
      stats[busiest] = GroupLoadStats{};
    }
  }
}

int Scheduler::MoveTasks(Time now, CpuId src_cpu, CpuId dst_cpu, double max_load,
                         bool force_min_one, MigrationReason reason) {
  Cpu& src = cpus_[src_cpu];
  Cpu& dst = cpus_[dst_cpu];

  // Candidates in increasing vruntime order; steal from the back (the
  // longest-waiting / least cache-hot end), as load_balance does. Threads
  // that ran within cache_hot_threshold (sched_migration_cost) are demoted
  // to a second-chance list, taken only when no cold candidate suffices.
  // Member scratch (balancing never nests): steady-state passes allocate
  // nothing.
  std::vector<SchedEntity*>& candidates = move_candidates_scratch_;
  std::vector<SchedEntity*>& hot = move_hot_scratch_;
  candidates.clear();
  hot.clear();
  src.rq.ForEachQueued([&](const SchedEntity* se) {
    if (!se->affinity.Test(dst_cpu)) {
      return true;
    }
    bool cache_hot = se->last_ran != 0 && now > se->last_ran &&
                     now - se->last_ran < tunables_.cache_hot_threshold;
    if (cache_hot) {
      // wc-lint: allow(A2 append into reused member scratch; steady state runs at retained capacity)
      hot.push_back(const_cast<SchedEntity*>(se));
    } else {
      // wc-lint: allow(A2 append into reused member scratch; steady state runs at retained capacity)
      candidates.push_back(const_cast<SchedEntity*>(se));
    }
    return true;
  });
  // Cold candidates first (back of the vruntime order = coldest).
  candidates.insert(candidates.begin(), hot.begin(), hot.end());

  int moved = 0;
  double moved_load = 0;
  bool dst_was_idle = nr_running_[dst_cpu] == 0;
  for (auto it = candidates.rbegin(); it != candidates.rend(); ++it) {
    SchedEntity* se = *it;
    if (moved_load >= max_load && !(force_min_one && moved == 0)) {
      break;
    }
    // An idle destination takes one task and starts running it (newidle
    // semantics); pulling a batch would just re-imbalance the source.
    if (dst_was_idle && moved >= 1) {
      break;
    }
    // Never empty the source completely: it must keep one runnable thread.
    if (nr_running_[src_cpu] <= 1) {
      break;
    }
    // wc-lint: allow(D6 single-entity pick; aggregates still come from GroupStats) allow(A4 one-entity read to debit moved load; not a rq-sum fold)
    double load = CfsRunqueue::EntityLoad(*se, now, AutogroupDivisor(se->autogroup));
    src.rq.DequeueQueued(se, now);
    Time rel = se->vruntime > src.rq.min_vruntime() ? se->vruntime - src.rq.min_vruntime() : 0;
    se->vruntime = dst.rq.min_vruntime() + rel;
    dst.rq.Enqueue(se, now, CfsRunqueue::EnqueueKind::kMigrate);
    se->cpu = dst_cpu;
    moved += 1;
    moved_load += load;
    trace_->OnMigration(now, se->tid, src_cpu, dst_cpu, reason);
    switch (reason) {
      case MigrationReason::kPeriodicBalance:
        stats_.migrations_periodic += 1;
        break;
      case MigrationReason::kIdleBalance:
        stats_.migrations_idle += 1;
        break;
      case MigrationReason::kNohzBalance:
        stats_.migrations_nohz += 1;
        break;
      case MigrationReason::kHotplug:
        stats_.migrations_hotplug += 1;
        break;
    }
  }

  if (moved > 0) {
    UpdateIdleState(now, src_cpu);
    UpdateIdleState(now, dst_cpu);
    NotifyNrRunning(now, src_cpu);
    NotifyLoad(now, src_cpu);
    NotifyNrRunning(now, dst_cpu);
    NotifyLoad(now, dst_cpu);
    // NOHZ balancing pulls work onto *other* (tickless) cores; they must be
    // kicked to notice it. Periodic/idle balancing pulls onto the caller.
    if (dst_was_idle && reason == MigrationReason::kNohzBalance) {
      client_->KickCpu(dst_cpu);
    }
  }
  return moved;
}

void Scheduler::IdleBalance(Time now, CpuId cpu) {
  // New-idle balancing skips the designated-core and interval checks: the
  // core is about to idle, so its cycles are free (§2.2, "emergency" load
  // balancing).
  for (SchedDomain& sd : cpus_[cpu].domains.domains) {
    if (BalanceDomain(now, cpu, sd, ConsideredKind::kIdleBalance) > 0) {
      return;
    }
  }
}

}  // namespace wcores
