#include "src/core/pelt.h"

#include <cmath>

namespace wcores {

double LoadTracker::Decay(Time elapsed) {
  // 2^(-elapsed / half-life). Beyond the saturation horizon the contribution
  // is below 1e-6; short-circuit to keep exp2 out of the common idle path.
  // The saturated 0.0 is also what makes ConstantFrom's case 3 exact.
  if (elapsed > kSaturationHorizon) {
    return 0.0;
  }
  return std::exp2(-static_cast<double>(elapsed) / static_cast<double>(kHalfLife));
}

double LoadTracker::DecayPeriods(Time period, int periods) {
  if (periods <= 0) {
    return 1.0;
  }
  return Decay(period * static_cast<Time>(periods));
}

}  // namespace wcores
