#include "src/core/pelt.h"

// Decay and DecayPeriods live inline in the header: ValueAt runs once per
// entity per balance fold, and the saturation short-circuit is worth having
// at the call site. This TU stays in the build as the class's definition
// home should out-of-line members return.
