#include "src/core/pelt.h"

#include <cmath>

namespace wcores {

double LoadTracker::Decay(Time elapsed) {
  // 2^(-elapsed / half-life). Beyond ~20 half-lives the contribution is
  // below 1e-6; short-circuit to keep exp2 out of the common idle path.
  if (elapsed > 20 * kHalfLife) {
    return 0.0;
  }
  return std::exp2(-static_cast<double>(elapsed) / static_cast<double>(kHalfLife));
}

}  // namespace wcores
