// Default SchedPolicy hook implementations: each is the CFS behavior,
// expressed through the Scheduler's public mechanism methods. Keeping the
// defaults here (not in scheduler.cc) means a policy author can read this
// file as the complete "what does CFS do at each decision point" reference.
#include "src/core/sched_policy.h"

#include "src/core/scheduler.h"

namespace wcores {

CpuId SchedPolicy::SelectWakeCpu(Time now, const SchedEntity& se, CpuId waker_cpu,
                                 CpuSet* considered) {
  return sched_->CfsSelectWakeCpu(now, se, waker_cpu, considered);
}

CpuId SchedPolicy::SelectForkCpu(Time now, const SchedEntity& se, CpuId parent_cpu) {
  (void)now;
  return sched_->CfsForkCpu(se, parent_cpu);
}

SchedEntity* SchedPolicy::PickNextEntity(Time now, CpuId cpu) {
  (void)now;
  return sched_->QueuedLeftmost(cpu);
}

bool SchedPolicy::TickPreempt(Time now, CpuId cpu) {
  (void)now;
  return sched_->CfsTickPreempt(cpu);
}

bool SchedPolicy::WakeupPreempts(Time now, CpuId cpu, const SchedEntity& woken) {
  return sched_->CfsWakeupPreempts(now, cpu, woken);
}

void SchedPolicy::PeriodicBalance(Time now, CpuId cpu) { sched_->CfsPeriodicBalance(now, cpu); }

void SchedPolicy::NewIdleBalance(Time now, CpuId cpu) { sched_->CfsIdleBalance(now, cpu); }

void SchedPolicy::NohzBalance(Time now, CpuId cpu) { sched_->CfsNohzBalance(now, cpu); }

void SchedPolicy::OnRqEnqueue(Time now, CpuId cpu, SchedEntity* se,
                              CfsRunqueue::EnqueueKind kind) {
  (void)now;
  (void)cpu;
  (void)se;
  (void)kind;
}

void SchedPolicy::OnRqDequeue(Time now, CpuId cpu, SchedEntity* se) {
  (void)now;
  (void)cpu;
  (void)se;
}

void SchedPolicy::OnRqPick(Time now, CpuId cpu, SchedEntity* se) {
  (void)now;
  (void)cpu;
  (void)se;
}

void SchedPolicy::OnRqReweight(Time now, CpuId cpu, SchedEntity* se, int old_nice) {
  (void)now;
  (void)cpu;
  (void)se;
  (void)old_nice;
}

}  // namespace wcores
