// The pluggable scheduling-policy interface: §5's "collection of modules"
// taken to its conclusion.
//
// The paper envisions a scheduler split into a core module that maintains
// the basic invariants and policy modules that decide placement and
// ordering. src/core/wake_policy.h is the small version of that idea — an
// optimization module *suggests* a wakeup target and the core arbitrates.
// SchedPolicy is the full version: a policy owns every decision point of
// the scheduler — wakeup placement, fork placement, pick-next, tick and
// wakeup preemption, and all three balancing triggers — while the core
// keeps the mechanism: runqueues, vruntime accounting, migration plumbing,
// idle bookkeeping, tracing, and the conservation invariants the
// conformance suite (tests/modsched/) checks for every registered policy.
//
// Division of responsibility:
//   - The *core* guarantees: thread census (nothing lost or duplicated),
//     affinity and online-ness of every placement (WC_CHECKed), vruntime
//     accounting, trace emission, and the runqueue structure itself.
//   - The *policy* decides: where wakes and forks land, which queued entity
//     runs next, when the running one is preempted, and when/whether the
//     CFS balancing mechanisms run.
//
// Every virtual hook has a default implementation that *is* today's CFS
// behavior, delegating to the Scheduler's public mechanism methods
// (Scheduler::Cfs*). CfsPolicy below is therefore empty, and a new policy
// overrides only the decisions it wants to make differently — the O(1)
// policy (src/modsched/o1_policy.h) replaces pick/preempt/wake placement
// but inherits the CFS balancers; the COREIDLE policy
// (src/modsched/coreidle_policy.h) replaces placement and gates balancing
// but inherits CFS pick-next.
//
// Policies needing their own view of runqueue membership (the O(1) priority
// arrays) opt into RqObserver events via WantsQueueEvents(); the default
// CFS policy does not, so the runqueue hot path pays a single predictable
// null-check per membership event.
//
// Determinism contract: a policy must be a pure function of scheduler state
// and its own deterministically-updated state — no wall clock, no
// unseeded randomness, no pointer-keyed iteration (wc-lint's rules apply to
// policy code like any other scheduler code). The per-policy golden trace
// hashes in tests/modsched/ enforce this the same way the CFS goldens do.
#ifndef SRC_CORE_SCHED_POLICY_H_
#define SRC_CORE_SCHED_POLICY_H_

#include "src/core/cfs_rq.h"
#include "src/core/entity.h"
#include "src/simkit/cpuset.h"
#include "src/simkit/time.h"

namespace wcores {

class Scheduler;

class SchedPolicy : public RqObserver {
 public:
  ~SchedPolicy() override = default;

  virtual const char* name() const = 0;

  // Called once from the Scheduler constructor, before any other hook.
  // Overrides must call the base (it stores sched_) and may size per-cpu
  // state from sched->topology().
  virtual void Attach(Scheduler* sched) { sched_ = sched; }

  // Policies returning true receive the RqObserver events below on every
  // runqueue of the machine.
  virtual bool WantsQueueEvents() const { return false; }

  // ---- Decision hooks (defaults = CFS) ------------------------------------

  // Wakeup placement for `se` (select_task_rq). Must return an online cpu
  // allowed by se.affinity (or any online cpu when the affinity set has no
  // online member); the core WC_CHECKs this. `considered` feeds the
  // kWakeup OnConsidered trace record.
  virtual CpuId SelectWakeCpu(Time now, const SchedEntity& se, CpuId waker_cpu,
                              CpuSet* considered);

  // Fork placement. Same validity contract as SelectWakeCpu. The CFS
  // default is the parent's core when allowed (§3.2), else the first
  // allowed online cpu.
  virtual CpuId SelectForkCpu(Time now, const SchedEntity& se, CpuId parent_cpu);

  // The queued entity `cpu` should run next, or nullptr to go idle. The
  // returned entity must be queued on `cpu` (WC_CHECKed by the runqueue).
  // The CFS default is the vruntime leftmost.
  virtual SchedEntity* PickNextEntity(Time now, CpuId cpu);

  // Preemption test at a scheduler tick on `cpu` (curr's accounting is
  // already up to date). True sets need_resched.
  virtual bool TickPreempt(Time now, CpuId cpu);

  // Preemption test when `woken` lands on `cpu`'s queue. Called just after
  // the enqueue (vruntimes are up to date); an idle cpu should return true.
  virtual bool WakeupPreempts(Time now, CpuId cpu, const SchedEntity& woken);

  // The three balancing triggers: periodic (every tick on a busy core),
  // new-idle (a core just ran out of work), and NOHZ (a kicked tickless
  // core balancing on behalf of idle cores). Defaults run the CFS
  // hierarchical balancer (Algorithm 1); policies may gate, replace, or
  // skip them.
  virtual void PeriodicBalance(Time now, CpuId cpu);
  virtual void NewIdleBalance(Time now, CpuId cpu);
  virtual void NohzBalance(Time now, CpuId cpu);

  // ---- RqObserver (no-ops unless WantsQueueEvents) -------------------------

  void OnRqEnqueue(Time now, CpuId cpu, SchedEntity* se,
                   CfsRunqueue::EnqueueKind kind) override;
  void OnRqDequeue(Time now, CpuId cpu, SchedEntity* se) override;
  void OnRqPick(Time now, CpuId cpu, SchedEntity* se) override;
  void OnRqReweight(Time now, CpuId cpu, SchedEntity* se, int old_nice) override;

 protected:
  Scheduler* sched_ = nullptr;
};

// Today's scheduler, as a policy: every hook keeps its CFS default. Running
// under this policy is bit-identical to the pre-arena scheduler — the
// determinism goldens and the cfs_bitexact conformance test enforce it.
class CfsPolicy : public SchedPolicy {
 public:
  const char* name() const override { return "cfs"; }
};

}  // namespace wcores

#endif  // SRC_CORE_SCHED_POLICY_H_
