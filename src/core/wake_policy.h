// Pluggable wakeup-placement policies: the hook for §5's modular-scheduler
// vision.
//
// "We envision a scheduler that is a collection of modules: the core module
// and optimization modules. ... A cache affinity module might suggest waking
// up a thread on a core where it recently ran. The core module should be
// able to take suggestions from optimization modules and to act on them
// whenever feasible, while always maintaining the basic invariants, such as
// not letting cores sit idle while there are runnable threads."
//
// A WakePolicy is an optimization module for the wakeup path. When one is
// attached (Scheduler::set_wake_policy), its suggestion replaces the stock
// select_task_rq heuristics — but the scheduler core retains the last word:
// a suggestion that would place the thread on a busy core while an allowed
// core sits idle violates the work-conserving invariant and is overridden
// (see src/modsched/ for module implementations and the arbitration story).
#ifndef SRC_CORE_WAKE_POLICY_H_
#define SRC_CORE_WAKE_POLICY_H_

#include "src/core/entity.h"
#include "src/simkit/cpuset.h"
#include "src/simkit/time.h"

namespace wcores {

class Scheduler;

struct WakeContext {
  const Scheduler* sched = nullptr;
  const SchedEntity* entity = nullptr;
  CpuId waker_cpu = kInvalidCpu;
  Time now = 0;
  // Allowed online cpus (affinity already applied).
  CpuSet allowed;
};

class WakePolicy {
 public:
  virtual ~WakePolicy() = default;

  // Returns the suggested cpu, or kInvalidCpu to abstain (the next module,
  // or the stock path, then decides).
  virtual CpuId Suggest(const WakeContext& ctx) = 0;

  virtual const char* name() const = 0;
};

}  // namespace wcores

#endif  // SRC_CORE_WAKE_POLICY_H_
