// Intrusive red-black tree, the data structure backing CFS runqueues (§2.1):
// "Threads are organized in a runqueue, implemented as a red-black tree, in
// which the threads are sorted in the increasing order of their vruntime."
//
// The tree caches its leftmost node so that picking the next thread to run
// (the one with the smallest vruntime) is O(1), like the kernel's
// rb_leftmost cache. It also caches the rightmost node; together the two
// let Insert() short-circuit the descent for boundary keys — the common
// case on a runqueue, where a preempted thread re-enqueues near the
// minimum and long-running threads enqueue at the maximum. A hinted insert
// links at exactly the position a full descent would choose, so the tree
// shape (and thus every traversal) is bit-identical either way.
//
// Usage:
//   struct Entity { uint64_t key; RbNode node; };
//   struct ByKey {
//     bool operator()(const Entity& a, const Entity& b) const { return a.key < b.key; }
//   };
//   RbTree<Entity, &Entity::node, ByKey> tree;
//   tree.Insert(&e);
//   Entity* min = tree.Leftmost();
//   tree.Erase(&e);
#ifndef SRC_CORE_RBTREE_H_
#define SRC_CORE_RBTREE_H_

#include <cassert>
#include <cstddef>

namespace wcores {

struct RbNode {
  RbNode* parent = nullptr;
  RbNode* left = nullptr;
  RbNode* right = nullptr;
  bool red = false;
  // Distinguishes "not in any tree" from "root with no children".
  bool linked = false;
};

// Key-agnostic balancing machinery. The typed wrapper below performs the
// comparisons during descent; the fixup logic only manipulates links/colors.
class RbTreeBase {
 public:
  RbTreeBase() = default;
  RbTreeBase(const RbTreeBase&) = delete;
  RbTreeBase& operator=(const RbTreeBase&) = delete;

  bool Empty() const { return root_ == nullptr; }
  size_t Size() const { return size_; }
  RbNode* LeftmostNode() const { return leftmost_; }
  RbNode* RightmostNode() const { return rightmost_; }

  // Links `node` as a child of `parent` at `*link` and rebalances.
  // `link` must be &parent->left or &parent->right (or &root_ when empty).
  void InsertAt(RbNode* node, RbNode* parent, RbNode** link);

  void Erase(RbNode* node);

  // For descent in the typed wrapper.
  RbNode* root() const { return root_; }
  RbNode** mutable_root() { return &root_; }

  // In-order successor, or nullptr.
  static RbNode* Next(RbNode* node);

  // In-order predecessor, or nullptr.
  static RbNode* Prev(RbNode* node);

  // Validates red-black invariants; returns black height, or -1 on violation.
  // Test-support only; O(n).
  int Validate() const;

 private:
  void RotateLeft(RbNode* x);
  void RotateRight(RbNode* x);
  void InsertFixup(RbNode* z);
  void EraseFixup(RbNode* x, RbNode* x_parent);
  void Transplant(RbNode* u, RbNode* v);
  static int ValidateSubtree(const RbNode* node, bool parent_red);

  RbNode* root_ = nullptr;
  RbNode* leftmost_ = nullptr;
  RbNode* rightmost_ = nullptr;
  size_t size_ = 0;
};

template <typename T, RbNode T::*Member, typename Less>
class RbTree {
 public:
  bool Empty() const { return base_.Empty(); }
  size_t Size() const { return base_.Size(); }

  static bool Linked(const T* item) { return (item->*Member).linked; }

  void Insert(T* item) {
    RbNode* node = &(item->*Member);
    assert(!node->linked && "node already in a tree");
    // Boundary hints. An item below the minimum descends left at every
    // node, so a full descent ends at leftmost->left; an item not below
    // the maximum (Less is a strict weak order made total by the tid
    // tiebreak) descends right at every node on the rightmost spine, so
    // it ends at rightmost->right. Linking there directly is O(1) and
    // produces the identical tree.
    if (RbNode* leftmost = base_.LeftmostNode();
        leftmost != nullptr && less_(*item, *FromNode(leftmost))) {
      base_.InsertAt(node, leftmost, &leftmost->left);
      return;
    }
    if (RbNode* rightmost = base_.RightmostNode();
        rightmost != nullptr && !less_(*item, *FromNode(rightmost))) {
      base_.InsertAt(node, rightmost, &rightmost->right);
      return;
    }
    RbNode** link = base_.mutable_root();
    RbNode* parent = nullptr;
    while (*link != nullptr) {
      parent = *link;
      if (less_(*item, *FromNode(parent))) {
        link = &parent->left;
      } else {
        link = &parent->right;
      }
    }
    base_.InsertAt(node, parent, link);
  }

  void Erase(T* item) {
    RbNode* node = &(item->*Member);
    assert(node->linked && "node not in a tree");
    base_.Erase(node);
  }

  // Smallest element or nullptr.
  T* Leftmost() const {
    RbNode* node = base_.LeftmostNode();
    return node != nullptr ? FromNode(node) : nullptr;
  }

  // Largest element or nullptr.
  T* Rightmost() const {
    RbNode* node = base_.RightmostNode();
    return node != nullptr ? FromNode(node) : nullptr;
  }

  // In-order traversal; `visit` returns false to stop early.
  template <typename Visitor>
  void ForEach(Visitor&& visit) const {
    for (RbNode* n = base_.LeftmostNode(); n != nullptr; n = RbTreeBase::Next(n)) {
      if (!visit(FromNode(n))) {
        return;
      }
    }
  }

  int Validate() const { return base_.Validate(); }

 private:
  static T* FromNode(RbNode* node) {
    return reinterpret_cast<T*>(reinterpret_cast<char*>(node) - MemberOffset());
  }
  static const T* FromNode(const RbNode* node) {
    return reinterpret_cast<const T*>(reinterpret_cast<const char*>(node) - MemberOffset());
  }
  static size_t MemberOffset() {
    alignas(T) static char dummy_storage[sizeof(T)];
    const T* dummy = reinterpret_cast<const T*>(dummy_storage);
    return reinterpret_cast<const char*>(&(dummy->*Member)) -
           reinterpret_cast<const char*>(dummy);
  }

  RbTreeBase base_;
  Less less_;
};

}  // namespace wcores

#endif  // SRC_CORE_RBTREE_H_
