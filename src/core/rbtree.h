// Intrusive red-black tree, the data structure backing CFS runqueues (§2.1):
// "Threads are organized in a runqueue, implemented as a red-black tree, in
// which the threads are sorted in the increasing order of their vruntime."
//
// The tree caches its leftmost node so that picking the next thread to run
// (the one with the smallest vruntime) is O(1), like the kernel's
// rb_leftmost cache. It also caches the rightmost node; together the two
// let Insert() short-circuit the descent for boundary keys — the common
// case on a runqueue, where a preempted thread re-enqueues near the
// minimum and long-running threads enqueue at the maximum. A hinted insert
// links at exactly the position a full descent would choose, so the tree
// shape (and thus every traversal) is bit-identical either way.
//
// Usage:
//   struct Entity { uint64_t key; RbNode node; };
//   struct ByKey {
//     bool operator()(const Entity& a, const Entity& b) const { return a.key < b.key; }
//   };
//   RbTree<Entity, &Entity::node, ByKey> tree;
//   tree.Insert(&e);
//   Entity* min = tree.Leftmost();
//   tree.Erase(&e);
#ifndef SRC_CORE_RBTREE_H_
#define SRC_CORE_RBTREE_H_

#include <cassert>
#include <cstddef>

namespace wcores {

struct RbNode {
  RbNode* parent = nullptr;
  RbNode* left = nullptr;
  RbNode* right = nullptr;
  bool red = false;
  // Distinguishes "not in any tree" from "root with no children".
  bool linked = false;
};

// Key-agnostic balancing machinery. The typed wrapper below performs the
// comparisons during descent; the fixup logic only manipulates links/colors.
class RbTreeBase {
 public:
  RbTreeBase() = default;
  RbTreeBase(const RbTreeBase&) = delete;
  RbTreeBase& operator=(const RbTreeBase&) = delete;

  bool Empty() const { return root_ == nullptr; }
  size_t Size() const { return size_; }
  RbNode* LeftmostNode() const { return leftmost_; }
  RbNode* RightmostNode() const { return rightmost_; }

  // Links `node` as a child of `parent` at `*link` and rebalances.
  // `link` must be &parent->left or &parent->right (or &root_ when empty).
  void InsertAt(RbNode* node, RbNode* parent, RbNode** link);

  void Erase(RbNode* node);

  // For descent in the typed wrapper.
  RbNode* root() const { return root_; }
  RbNode** mutable_root() { return &root_; }

  // In-order successor, or nullptr. Inline: ForEach drives every balance
  // fold's entity walk through it, one call per queued entity.
  static RbNode* Next(RbNode* node) {
    if (node->right != nullptr) {
      node = node->right;
      while (node->left != nullptr) {
        node = node->left;
      }
      return node;
    }
    RbNode* parent = node->parent;
    while (parent != nullptr && node == parent->right) {
      node = parent;
      parent = parent->parent;
    }
    return parent;
  }

  // In-order predecessor, or nullptr.
  static RbNode* Prev(RbNode* node) {
    if (node->left != nullptr) {
      node = node->left;
      while (node->right != nullptr) {
        node = node->right;
      }
      return node;
    }
    RbNode* parent = node->parent;
    while (parent != nullptr && node == parent->left) {
      node = parent;
      parent = parent->parent;
    }
    return parent;
  }

  // Validates red-black invariants; returns black height, or -1 on violation.
  // Test-support only; O(n).
  int Validate() const;

 private:
  void RotateLeft(RbNode* x);
  void RotateRight(RbNode* x);
  void InsertFixup(RbNode* z);
  void EraseFixup(RbNode* x, RbNode* x_parent);
  void Transplant(RbNode* u, RbNode* v);
  static int ValidateSubtree(const RbNode* node, bool parent_red);

  RbNode* root_ = nullptr;
  RbNode* leftmost_ = nullptr;
  RbNode* rightmost_ = nullptr;
  size_t size_ = 0;
};

template <typename T, RbNode T::*Member, typename Less>
class RbTree {
 public:
  bool Empty() const { return base_.Empty(); }
  size_t Size() const { return base_.Size(); }

  static bool Linked(const T* item) { return (item->*Member).linked; }

  void Insert(T* item) {
    RbNode* node = &(item->*Member);
    assert(!node->linked && "node already in a tree");
    RbNode* root = base_.root();
    if (root == nullptr) {
      base_.InsertAt(node, nullptr, base_.mutable_root());
      return;
    }
    // Single descent with a folded boundary hint. The first comparison —
    // against the root, which a full descent performs anyway — decides
    // which boundary is still reachable: an item below the root can never
    // sit at-or-above the maximum, and one at-or-above the root can never
    // sit below the minimum. Only that one hint is then checked, so an
    // interior insert pays one hint comparison instead of two pre-checks.
    // The hints link where a full descent would end: an item below the
    // minimum descends left at every node, ending at leftmost->left; an
    // item not below the maximum (Less is a strict weak order made total
    // by the tid tiebreak) descends right along the rightmost spine,
    // ending at rightmost->right. Tree shape is bit-identical either way.
    RbNode* parent = root;
    RbNode** link;
    if (less_(*item, *FromNode(root))) {
      RbNode* leftmost = base_.LeftmostNode();
      if (less_(*item, *FromNode(leftmost))) {
        base_.InsertAt(node, leftmost, &leftmost->left);
        return;
      }
      link = &root->left;
    } else {
      RbNode* rightmost = base_.RightmostNode();
      if (!less_(*item, *FromNode(rightmost))) {
        base_.InsertAt(node, rightmost, &rightmost->right);
        return;
      }
      link = &root->right;
    }
    while (*link != nullptr) {
      parent = *link;
      if (less_(*item, *FromNode(parent))) {
        link = &parent->left;
      } else {
        link = &parent->right;
      }
    }
    base_.InsertAt(node, parent, link);
  }

  void Erase(T* item) {
    RbNode* node = &(item->*Member);
    assert(node->linked && "node not in a tree");
    base_.Erase(node);
  }

  // Smallest element or nullptr.
  T* Leftmost() const {
    RbNode* node = base_.LeftmostNode();
    return node != nullptr ? FromNode(node) : nullptr;
  }

  // Largest element or nullptr.
  T* Rightmost() const {
    RbNode* node = base_.RightmostNode();
    return node != nullptr ? FromNode(node) : nullptr;
  }

  // In-order traversal; `visit` returns false to stop early.
  template <typename Visitor>
  void ForEach(Visitor&& visit) const {
    for (RbNode* n = base_.LeftmostNode(); n != nullptr; n = RbTreeBase::Next(n)) {
      if (!visit(FromNode(n))) {
        return;
      }
    }
  }

  int Validate() const { return base_.Validate(); }

 private:
  static T* FromNode(RbNode* node) {
    return reinterpret_cast<T*>(reinterpret_cast<char*>(node) - MemberOffset());
  }
  static const T* FromNode(const RbNode* node) {
    return reinterpret_cast<const T*>(reinterpret_cast<const char*>(node) - MemberOffset());
  }
  static size_t MemberOffset() {
    alignas(T) static char dummy_storage[sizeof(T)];
    const T* dummy = reinterpret_cast<const T*>(dummy_storage);
    return reinterpret_cast<const char*>(&(dummy->*Member)) -
           reinterpret_cast<const char*>(dummy);
  }

  RbTreeBase base_;
  Less less_;
};

}  // namespace wcores

#endif  // SRC_CORE_RBTREE_H_
