#include "src/core/rbtree.h"

namespace wcores {

namespace {

bool IsRed(const RbNode* node) { return node != nullptr && node->red; }

}  // namespace

void RbTreeBase::RotateLeft(RbNode* x) {
  RbNode* y = x->right;
  x->right = y->left;
  if (y->left != nullptr) {
    y->left->parent = x;
  }
  y->parent = x->parent;
  if (x->parent == nullptr) {
    root_ = y;
  } else if (x == x->parent->left) {
    x->parent->left = y;
  } else {
    x->parent->right = y;
  }
  y->left = x;
  x->parent = y;
}

void RbTreeBase::RotateRight(RbNode* x) {
  RbNode* y = x->left;
  x->left = y->right;
  if (y->right != nullptr) {
    y->right->parent = x;
  }
  y->parent = x->parent;
  if (x->parent == nullptr) {
    root_ = y;
  } else if (x == x->parent->right) {
    x->parent->right = y;
  } else {
    x->parent->left = y;
  }
  y->right = x;
  x->parent = y;
}

void RbTreeBase::InsertAt(RbNode* node, RbNode* parent, RbNode** link) {
  node->parent = parent;
  node->left = nullptr;
  node->right = nullptr;
  node->red = true;
  node->linked = true;
  *link = node;
  // Maintain the boundary caches: the new node is leftmost iff it was linked
  // as the left child of the previous leftmost (or the tree was empty), and
  // symmetrically for rightmost.
  if (leftmost_ == nullptr || (parent == leftmost_ && link == &parent->left)) {
    leftmost_ = node;
  }
  if (rightmost_ == nullptr || (parent == rightmost_ && link == &parent->right)) {
    rightmost_ = node;
  }
  ++size_;
  InsertFixup(node);
}

void RbTreeBase::InsertFixup(RbNode* z) {
  while (IsRed(z->parent)) {
    RbNode* parent = z->parent;
    RbNode* grand = parent->parent;  // Non-null: a red parent is never root.
    if (parent == grand->left) {
      RbNode* uncle = grand->right;
      if (IsRed(uncle)) {
        parent->red = false;
        uncle->red = false;
        grand->red = true;
        z = grand;
      } else {
        if (z == parent->right) {
          z = parent;
          RotateLeft(z);
          parent = z->parent;
        }
        parent->red = false;
        grand->red = true;
        RotateRight(grand);
      }
    } else {
      RbNode* uncle = grand->left;
      if (IsRed(uncle)) {
        parent->red = false;
        uncle->red = false;
        grand->red = true;
        z = grand;
      } else {
        if (z == parent->left) {
          z = parent;
          RotateRight(z);
          parent = z->parent;
        }
        parent->red = false;
        grand->red = true;
        RotateLeft(grand);
      }
    }
  }
  root_->red = false;
}

void RbTreeBase::Transplant(RbNode* u, RbNode* v) {
  if (u->parent == nullptr) {
    root_ = v;
  } else if (u == u->parent->left) {
    u->parent->left = v;
  } else {
    u->parent->right = v;
  }
  if (v != nullptr) {
    v->parent = u->parent;
  }
}

void RbTreeBase::Erase(RbNode* z) {
  if (leftmost_ == z) {
    leftmost_ = Next(z);
  }
  if (rightmost_ == z) {
    rightmost_ = Prev(z);
  }

  RbNode* y = z;
  bool y_was_red = y->red;
  RbNode* x = nullptr;
  RbNode* x_parent = nullptr;

  if (z->left == nullptr) {
    x = z->right;
    x_parent = z->parent;
    Transplant(z, z->right);
  } else if (z->right == nullptr) {
    x = z->left;
    x_parent = z->parent;
    Transplant(z, z->left);
  } else {
    // y = in-order successor = leftmost of right subtree.
    y = z->right;
    while (y->left != nullptr) {
      y = y->left;
    }
    y_was_red = y->red;
    x = y->right;
    if (y->parent == z) {
      x_parent = y;
    } else {
      x_parent = y->parent;
      Transplant(y, y->right);
      y->right = z->right;
      y->right->parent = y;
    }
    Transplant(z, y);
    y->left = z->left;
    y->left->parent = y;
    y->red = z->red;
  }

  z->parent = nullptr;
  z->left = nullptr;
  z->right = nullptr;
  z->linked = false;
  --size_;

  if (!y_was_red) {
    EraseFixup(x, x_parent);
  }
}

void RbTreeBase::EraseFixup(RbNode* x, RbNode* x_parent) {
  while (x != root_ && !IsRed(x)) {
    if (x == x_parent->left) {
      RbNode* w = x_parent->right;  // Sibling; non-null while black heights differ.
      if (IsRed(w)) {
        w->red = false;
        x_parent->red = true;
        RotateLeft(x_parent);
        w = x_parent->right;
      }
      if (!IsRed(w->left) && !IsRed(w->right)) {
        w->red = true;
        x = x_parent;
        x_parent = x->parent;
      } else {
        if (!IsRed(w->right)) {
          w->left->red = false;
          w->red = true;
          RotateRight(w);
          w = x_parent->right;
        }
        w->red = x_parent->red;
        x_parent->red = false;
        w->right->red = false;
        RotateLeft(x_parent);
        x = root_;
        x_parent = nullptr;
      }
    } else {
      RbNode* w = x_parent->left;
      if (IsRed(w)) {
        w->red = false;
        x_parent->red = true;
        RotateRight(x_parent);
        w = x_parent->left;
      }
      if (!IsRed(w->right) && !IsRed(w->left)) {
        w->red = true;
        x = x_parent;
        x_parent = x->parent;
      } else {
        if (!IsRed(w->left)) {
          w->right->red = false;
          w->red = true;
          RotateLeft(w);
          w = x_parent->left;
        }
        w->red = x_parent->red;
        x_parent->red = false;
        w->left->red = false;
        RotateRight(x_parent);
        x = root_;
        x_parent = nullptr;
      }
    }
  }
  if (x != nullptr) {
    x->red = false;
  }
}

int RbTreeBase::ValidateSubtree(const RbNode* node, bool parent_red) {
  if (node == nullptr) {
    return 0;  // Nil leaves are black; black height 0 by convention.
  }
  if (parent_red && node->red) {
    return -1;  // Red violation.
  }
  if (node->left != nullptr && node->left->parent != node) {
    return -1;
  }
  if (node->right != nullptr && node->right->parent != node) {
    return -1;
  }
  int lh = ValidateSubtree(node->left, node->red);
  int rh = ValidateSubtree(node->right, node->red);
  if (lh < 0 || rh < 0 || lh != rh) {
    return -1;
  }
  return lh + (node->red ? 0 : 1);
}

int RbTreeBase::Validate() const {
  if (root_ == nullptr) {
    return (leftmost_ == nullptr && rightmost_ == nullptr) ? 0 : -1;
  }
  if (root_->red || root_->parent != nullptr) {
    return -1;
  }
  // Boundary caches must match the true minimum/maximum.
  const RbNode* min = root_;
  while (min->left != nullptr) {
    min = min->left;
  }
  if (min != leftmost_) {
    return -1;
  }
  const RbNode* max = root_;
  while (max->right != nullptr) {
    max = max->right;
  }
  if (max != rightmost_) {
    return -1;
  }
  return ValidateSubtree(root_, false);
}

}  // namespace wcores
