#include "src/core/cfs_rq.h"

#include "src/simkit/check.h"

#include <algorithm>
#include <cassert>

namespace wcores {

void CfsRunqueue::Enqueue(SchedEntity* se, Time now, EnqueueKind kind) {
  WC_CHECK(!se->on_rq, "entity already runnable");
  UpdateCurr(now);

  switch (kind) {
    case EnqueueKind::kWakeup: {
      // Sleeper credit (GENTLE_FAIR_SLEEPERS): a waking thread is placed
      // half a latency period behind min_vruntime so it gets scheduled
      // soon, but cannot monopolize the CPU after a long sleep.
      Time floor = min_vruntime_;
      Time credit = tunables_->sched_latency / 2;
      Time placed = floor > credit ? floor - credit : 0;
      se->vruntime = std::max(se->vruntime, placed);
      break;
    }
    case EnqueueKind::kNew:
      se->vruntime = std::max(se->vruntime, min_vruntime_);
      break;
    case EnqueueKind::kMigrate:
      // Caller re-based: se->vruntime -= src.min_vruntime; += dst.min_vruntime.
      break;
    case EnqueueKind::kPutPrev:
      break;
  }

  // Runqueue-wait accounting starts when the entity begins waiting; a
  // migration moves the wait, it does not restart it.
  if (kind != EnqueueKind::kMigrate) {
    se->queued_since = now;
  }

  se->on_rq = true;
  se->running = false;
  se->cpu = cpu_;
  tree_.Insert(se);
  total_weight_ += se->weight;
  BumpLoadVersion();
  SyncNr();
  UpdateMinVruntime();
  if (observer_ != nullptr) {
    observer_->OnRqEnqueue(now, cpu_, se, kind);
  }
}

void CfsRunqueue::DequeueQueued(SchedEntity* se, Time now) {
  WC_CHECK(se->on_rq && !se->running && se->cpu == cpu_, "dequeue of entity not queued here");
  UpdateCurr(now);
  tree_.Erase(se);
  total_weight_ -= se->weight;
  BumpLoadVersion();
  SyncNr();
  se->on_rq = false;
  se->last_dequeued = now;
  UpdateMinVruntime();
  if (observer_ != nullptr) {
    observer_->OnRqDequeue(now, cpu_, se);
  }
}

void CfsRunqueue::Reweight(SchedEntity* se, Time now, int nice) {
  WC_CHECK(se->on_rq && se->cpu == cpu_, "reweight of entity not on this queue");
  UpdateCurr(now);  // Runtime already consumed accrues vruntime at the old weight.
  int old_nice = se->nice;
  total_weight_ -= se->weight;
  se->SetNice(nice);
  total_weight_ += se->weight;
  BumpLoadVersion();
  if (observer_ != nullptr && !se->running) {
    observer_->OnRqReweight(now, cpu_, se, old_nice);
  }
}

SchedEntity* CfsRunqueue::PickNext(Time now) {
  WC_CHECK(curr_ == nullptr, "previous curr not put back");
  SchedEntity* next = tree_.Leftmost();
  if (next == nullptr) {
    return nullptr;
  }
  return PickSpecific(next, now);
}

SchedEntity* CfsRunqueue::PickSpecific(SchedEntity* se, Time now) {
  WC_CHECK(curr_ == nullptr, "previous curr not put back");
  WC_CHECK(se != nullptr && se->on_rq && !se->running && se->cpu == cpu_,
           "picked entity not queued on this cpu");
  // LoadAt folds curr first, then the tree in vruntime order, and the RqLoad
  // memo replays cached sums under an unchanged load_version. Picking the
  // leftmost preserves that fold sequence exactly, so the CFS path needs no
  // bump; a policy picking any *other* entity permutes the fold order, which
  // float addition does not forgive — invalidate the memo.
  if (se != tree_.Leftmost()) {
    BumpLoadVersion();
  }
  tree_.Erase(se);
  curr_ = se;
  se->running = true;
  se->exec_start = now;
  se->slice_exec = 0;
  if (observer_ != nullptr) {
    observer_->OnRqPick(now, cpu_, se);
  }
  return se;
}

void CfsRunqueue::UpdateCurr(Time now) {
  if (curr_ == nullptr) {
    return;
  }
  Time delta = now - curr_->exec_start;
  if (delta == 0) {
    return;
  }
  curr_->exec_start = now;
  curr_->sum_exec_runtime += delta;
  curr_->slice_exec += delta;
  curr_->vruntime += curr_->DeltaExecToVruntime(delta);
  UpdateMinVruntime();
}

void CfsRunqueue::PutCurr(Time now, PutKind kind) {
  WC_CHECK(curr_ != nullptr, "no running entity");
  UpdateCurr(now);
  SchedEntity* prev = curr_;
  curr_ = nullptr;
  prev->running = false;
  prev->last_ran = now;
  total_weight_ -= prev->weight;
  if (kind == PutKind::kStillRunnable) {
    prev->on_rq = false;  // Enqueue() re-sets it.
    Enqueue(prev, now, EnqueueKind::kPutPrev);
  } else {
    prev->on_rq = false;
    prev->last_dequeued = now;
    BumpLoadVersion();
    SyncNr();
    UpdateMinVruntime();
  }
}

bool CfsRunqueue::HasStealableFor(CpuId cpu) const {
  bool found = false;
  tree_.ForEach([&](const SchedEntity* se) {
    if (se->affinity.Test(cpu)) {
      found = true;
      return false;
    }
    return true;
  });
  return found;
}

Time CfsRunqueue::TimesliceFor(const SchedEntity& se) const {
  uint64_t total = total_weight_;
  if (!se.on_rq && !se.running) {
    total += se.weight;
  }
  if (total == 0) {
    return tunables_->sched_latency;
  }
  Time slice = static_cast<Time>(static_cast<double>(tunables_->sched_latency) *
                                 static_cast<double>(se.weight) / static_cast<double>(total));
  return std::max(slice, tunables_->min_granularity);
}

bool CfsRunqueue::CheckPreemptTick() const {
  if (curr_ == nullptr || tree_.Empty()) {
    return false;
  }
  if (curr_->slice_exec >= TimesliceFor(*curr_)) {
    return true;
  }
  // A thread far ahead in vruntime yields even mid-slice.
  const SchedEntity* left = tree_.Leftmost();
  return curr_->vruntime > left->vruntime &&
         curr_->vruntime - left->vruntime > TimesliceFor(*curr_);
}

bool CfsRunqueue::CheckPreemptWakeup(const SchedEntity& woken, Time now) const {
  if (curr_ == nullptr) {
    return true;  // Idle cpu: anything "preempts".
  }
  (void)now;
  // Preempt if the woken thread is behind curr by more than the wakeup
  // granularity (kernel wakeup_preempt_entity).
  return curr_->vruntime > woken.vruntime &&
         curr_->vruntime - woken.vruntime > tunables_->wakeup_granularity;
}

bool CfsRunqueue::ValidateInvariants() const {
  if (tree_.Validate() < 0) {
    return false;
  }
  uint64_t weight = curr_ != nullptr ? curr_->weight : 0;
  size_t count = 0;
  const SchedEntity* prev = nullptr;
  bool ok = true;
  tree_.ForEach([&](const SchedEntity* se) {
    weight += se->weight;
    count += 1;
    if (se->cpu != cpu_ || !se->on_rq || se->running) {
      ok = false;
    }
    if (prev != nullptr && EntityByVruntime()(*se, *prev)) {
      ok = false;  // In-order traversal out of order.
    }
    prev = se;
    return true;
  });
  if (curr_ != nullptr && (!curr_->running || !curr_->on_rq || curr_->cpu != cpu_)) {
    ok = false;
  }
  return ok && count == tree_.Size() && weight == total_weight_;
}

void CfsRunqueue::UpdateMinVruntime() {
  Time candidate = min_vruntime_;
  const SchedEntity* left = tree_.Leftmost();
  if (curr_ != nullptr && left != nullptr) {
    candidate = std::max(candidate, std::min(curr_->vruntime, left->vruntime));
  } else if (curr_ != nullptr) {
    candidate = std::max(candidate, curr_->vruntime);
  } else if (left != nullptr) {
    candidate = std::max(candidate, left->vruntime);
  }
  min_vruntime_ = candidate;
}

}  // namespace wcores
