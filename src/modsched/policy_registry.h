// The policy registry: name -> fresh SchedPolicy instance.
//
// Every registered policy is exercised by the conformance suite
// (tests/modsched/) and by sweep_driver's --policy axis, so adding a policy
// here is what puts it "in the arena": one class + one registration line
// buys the invariant fuzzing, the paper-bug matrix, a golden trace hash,
// and a leaderboard column.
//
// Factories return a *fresh* instance per call — policies hold per-machine
// state and must never be shared across schedulers (the sweep runs
// scenarios concurrently).
#ifndef SRC_MODSCHED_POLICY_REGISTRY_H_
#define SRC_MODSCHED_POLICY_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/sched_policy.h"

namespace wcores {

// Creates the named policy, or null for an unknown name.
std::unique_ptr<SchedPolicy> CreateSchedPolicy(const std::string& name);

// Registered names, in registration order ("cfs" first).
const std::vector<std::string>& SchedPolicyNames();

}  // namespace wcores

#endif  // SRC_MODSCHED_POLICY_REGISTRY_H_
