// Optimization modules for the modular scheduler (§5 of the paper).
//
// "If every good scheduling idea is slapped as an add-on to a single
// monolithic scheduler, we risk more complexity and more bugs. ... We
// envision a scheduler that is a collection of modules: the core module and
// optimization modules."
//
// Each class here is one such optimization module, expressed as a WakePolicy
// (src/core/wake_policy.h). The Scheduler core arbitrates: it takes a
// module's suggestion whenever feasible and overrides it when it would leave
// an allowed core idle while placing the thread on a busy one — the basic
// invariant the paper says the core must always maintain. The demonstration
// (examples/modular_scheduler.cpp, tests/modsched/modular_test.cc) shows
// that even an aggressively cache-greedy module cannot reintroduce the
// Overload-on-Wakeup pathology through this interface.
#ifndef SRC_MODSCHED_MODULES_H_
#define SRC_MODSCHED_MODULES_H_

#include <memory>
#include <vector>

#include "src/core/scheduler.h"
#include "src/core/wake_policy.h"
#include "src/topo/topology.h"

namespace wcores {

// Maximal cache reuse: always suggest the core the thread last ran on,
// whatever its load. Unchecked, this is worse than the Overload-on-Wakeup
// bug; under the core's arbitration it is safe.
class CacheAffinityModule : public WakePolicy {
 public:
  CpuId Suggest(const WakeContext& ctx) override {
    CpuId prev = ctx.entity->cpu;
    if (prev != kInvalidCpu && ctx.allowed.Test(prev)) {
      return prev;
    }
    return kInvalidCpu;
  }
  const char* name() const override { return "cache-affinity"; }
};

// Keep the thread on the NUMA node of its memory (approximated by the node
// it last ran on): suggest an idle core of that node, else the least-loaded
// core of that node.
class NumaLocalityModule : public WakePolicy {
 public:
  CpuId Suggest(const WakeContext& ctx) override {
    CpuId prev = ctx.entity->cpu;
    if (prev == kInvalidCpu) {
      return kInvalidCpu;
    }
    const Topology& topo = ctx.sched->topology();
    CpuSet node_cpus = topo.CpusOfNode(topo.NodeOf(prev)) & ctx.allowed;
    if (node_cpus.Empty()) {
      return kInvalidCpu;
    }
    CpuId best = kInvalidCpu;
    int best_nr = 0;
    for (CpuId c : node_cpus) {
      int nr = ctx.sched->NrRunning(c);
      if (nr == 0) {
        return c;
      }
      if (best == kInvalidCpu || nr < best_nr) {
        best = c;
        best_nr = nr;
      }
    }
    return best;
  }
  const char* name() const override { return "numa-locality"; }
};

// Spread load: suggest the longest-idle allowed core (the paper's
// Overload-on-Wakeup fix, as a module). Cheap to consult on every wake:
// LongestIdleCpu reads the scheduler's incremental per-node idle index,
// O(nodes) on a busy machine rather than a full-machine scan.
class LoadSpreadModule : public WakePolicy {
 public:
  CpuId Suggest(const WakeContext& ctx) override {
    return ctx.sched->LongestIdleCpu(ctx.allowed);
  }
  const char* name() const override { return "load-spread"; }
};

// Combines modules by priority: the first non-abstaining suggestion wins
// (the core still arbitrates the final answer). This is the "how to combine
// multiple optimizations" question §5 leaves open, answered the simplest
// defensible way: a strict priority order.
class ModuleChain : public WakePolicy {
 public:
  // Borrow a module. The caller keeps ownership and must keep it alive for
  // the chain's lifetime (the usual shape: module and chain on one stack
  // frame, chain declared last).
  void Add(WakePolicy* module) { modules_.push_back(module); }

  // Own a module: it lives exactly as long as the chain. Prefer this when
  // the chain is long-lived or handed across scopes.
  void Add(std::unique_ptr<WakePolicy> module) {
    modules_.push_back(module.get());
    owned_.push_back(std::move(module));
  }

  CpuId Suggest(const WakeContext& ctx) override {
    for (WakePolicy* module : modules_) {
      CpuId cpu = module->Suggest(ctx);
      if (cpu != kInvalidCpu) {
        last_winner_ = module->name();
        return cpu;
      }
    }
    last_winner_ = nullptr;
    return kInvalidCpu;
  }

  const char* name() const override { return "chain"; }
  const char* last_winner() const { return last_winner_; }

 private:
  std::vector<WakePolicy*> modules_;            // Priority order; borrowed or owned below.
  std::vector<std::unique_ptr<WakePolicy>> owned_;
  const char* last_winner_ = nullptr;
};

}  // namespace wcores

#endif  // SRC_MODSCHED_MODULES_H_
