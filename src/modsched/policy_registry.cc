#include "src/modsched/policy_registry.h"

#include "src/modsched/coreidle_policy.h"
#include "src/modsched/o1_policy.h"

namespace wcores {

namespace {

struct PolicyEntry {
  const char* name;
  std::unique_ptr<SchedPolicy> (*make)();
};

// The arena roster. To add a policy: implement SchedPolicy, add one line.
constexpr PolicyEntry kPolicies[] = {
    {"cfs", [] { return std::unique_ptr<SchedPolicy>(new CfsPolicy()); }},
    {"o1", [] { return std::unique_ptr<SchedPolicy>(new O1Policy()); }},
    {"coreidle", [] { return std::unique_ptr<SchedPolicy>(new CoreIdlePolicy()); }},
};

}  // namespace

std::unique_ptr<SchedPolicy> CreateSchedPolicy(const std::string& name) {
  for (const PolicyEntry& e : kPolicies) {
    if (name == e.name) {
      return e.make();
    }
  }
  return nullptr;
}

const std::vector<std::string>& SchedPolicyNames() {
  static const std::vector<std::string>* names = [] {
    auto* v = new std::vector<std::string>();
    for (const PolicyEntry& e : kPolicies) {
      v->push_back(e.name);
    }
    return v;
  }();
  return *names;
}

}  // namespace wcores
