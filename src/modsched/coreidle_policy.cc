#include "src/modsched/coreidle_policy.h"

#include "src/core/scheduler.h"

namespace wcores {

CpuSet CoreIdlePolicy::ActiveSet() const {
  // Count runnable threads, then admit just enough cores: K = runnable + 1.
  // The +1 keeps one idle core in the set so the next wake or fork lands
  // inside it without an emergency grow.
  CpuSet online = sched_->OnlineCpus();
  int runnable = 0;
  for (CpuId c : online) {
    runnable += sched_->NrRunning(c);
  }
  CpuSet active;
  int admitted = 0;
  for (CpuId c : online) {
    active.Set(c);
    admitted += 1;
    if (admitted > runnable) {
      break;
    }
  }
  return active;
}

bool CoreIdlePolicy::AnyOverloaded() const {
  // The mechanism keeps an exact overloaded-cpu count through the
  // runqueues' write-through stat slots, so this gate — paid on every tick
  // and newidle event under COREIDLE — is a counter read, not an O(cpus)
  // NrRunning sweep. Offline cpus are always evacuated to empty queues, so
  // the count over all cpus equals the count over online ones.
  return sched_->AnyCpuOverloaded();
}

CpuId CoreIdlePolicy::Place(const SchedEntity& se, CpuId prev, CpuSet* considered) const {
  CpuSet online = sched_->OnlineCpus();
  CpuSet allowed = se.affinity & online;
  if (allowed.Empty()) {
    allowed = online;  // Affinity became unsatisfiable (hotplug); break it.
  }
  CpuSet candidates = allowed & ActiveSet();
  if (candidates.Empty()) {
    candidates = allowed;  // Pinned entirely outside the active set.
  }
  *considered |= candidates;

  // Cache reuse when it costs no consolidation: the previous cpu, if it is
  // an idle member of the candidate set.
  if (prev != kInvalidCpu && candidates.Test(prev) && sched_->IsIdleCpu(prev)) {
    return prev;
  }
  // Pack low: the lowest-id idle candidate.
  CpuId best = kInvalidCpu;
  int best_nr = 0;
  for (CpuId c : candidates) {
    if (sched_->IsIdleCpu(c)) {
      return c;
    }
    int nr = sched_->NrRunning(c);
    if (best == kInvalidCpu || nr < best_nr) {
      best = c;
      best_nr = nr;
    }
  }
  return best;  // Everyone busy: the least-occupied candidate.
}

CpuId CoreIdlePolicy::SelectWakeCpu(Time now, const SchedEntity& se, CpuId waker_cpu,
                                    CpuSet* considered) {
  (void)now;
  (void)waker_cpu;
  return Place(se, se.cpu, considered);
}

CpuId CoreIdlePolicy::SelectForkCpu(Time now, const SchedEntity& se, CpuId parent_cpu) {
  (void)now;
  CpuSet considered;
  return Place(se, parent_cpu, &considered);
}

void CoreIdlePolicy::PeriodicBalance(Time now, CpuId cpu) {
  if (AnyOverloaded()) {
    sched_->CfsPeriodicBalance(now, cpu);
  }
}

void CoreIdlePolicy::NewIdleBalance(Time now, CpuId cpu) {
  if (AnyOverloaded()) {
    sched_->CfsIdleBalance(now, cpu);
  }
}

void CoreIdlePolicy::NohzBalance(Time now, CpuId cpu) {
  if (AnyOverloaded()) {
    sched_->CfsNohzBalance(now, cpu);
  }
}

}  // namespace wcores
