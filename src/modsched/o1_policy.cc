#include "src/modsched/o1_policy.h"

#include <algorithm>

#include "src/core/scheduler.h"
#include "src/simkit/check.h"

namespace wcores {

int O1Policy::PrioArray::FirstSet() const {
  for (int w = 0; w < 3; ++w) {
    if (bitmap[w] != 0) {
      return w * 64 + __builtin_ctzll(bitmap[w]);
    }
  }
  return -1;
}

void O1Policy::PrioArray::Push(int prio, ThreadId tid) {
  queues[prio].push_back(tid);
  bitmap[prio / 64] |= uint64_t{1} << (prio % 64);
  count += 1;
}

void O1Policy::PrioArray::Remove(int prio, ThreadId tid) {
  std::deque<ThreadId>& q = queues[prio];
  auto it = std::find(q.begin(), q.end(), tid);
  WC_CHECK(it != q.end(), "o1: task not in its recorded priority queue");
  q.erase(it);
  if (q.empty()) {
    bitmap[prio / 64] &= ~(uint64_t{1} << (prio % 64));
  }
  count -= 1;
}

void O1Policy::Attach(Scheduler* sched) {
  SchedPolicy::Attach(sched);
  cpus_.assign(static_cast<size_t>(sched->topology().n_cores()), CpuState{});
}

O1Policy::TaskState& O1Policy::StateOf(ThreadId tid) {
  while (tasks_.size() <= static_cast<size_t>(tid)) {
    tasks_.emplace_back();
  }
  return tasks_[tid];
}

Time O1Policy::TimesliceOf(int prio) const {
  // prio 100 -> 200 ms, prio 139 -> 5 ms, linear in between.
  return Milliseconds(5) * static_cast<Time>(kLevels - prio);
}

CpuId O1Policy::SelectWakeCpu(Time now, const SchedEntity& se, CpuId waker_cpu,
                              CpuSet* considered) {
  (void)now;
  (void)waker_cpu;
  CpuSet allowed = se.affinity & sched_->OnlineCpus();
  if (allowed.Empty()) {
    allowed = sched_->OnlineCpus();
  }
  // 2.6.8 try_to_wake_up: run where you last ran; balancing is somebody
  // else's job. This is the design point that stacks wakeups.
  if (se.cpu != kInvalidCpu && allowed.Test(se.cpu)) {
    considered->Set(se.cpu);
    return se.cpu;
  }
  CpuId first = allowed.First();
  considered->Set(first);
  return first;
}

SchedEntity* O1Policy::PickNextEntity(Time now, CpuId cpu) {
  (void)now;
  CpuState& cs = cpus_[cpu];
  PrioArray* act = &cs.arrays[cs.active];
  if (act->count == 0) {
    if (cs.arrays[1 - cs.active].count == 0) {
      return nullptr;
    }
    cs.active = 1 - cs.active;  // Array swap: a new round-robin epoch.
    act = &cs.arrays[cs.active];
  }
  int prio = act->FirstSet();
  WC_CHECK(prio >= 0, "o1: non-empty array with empty bitmap");
  return &sched_->MutableEntity(act->queues[prio].front());
}

bool O1Policy::TickPreempt(Time now, CpuId cpu) {
  (void)now;
  ThreadId tid = sched_->CurrentThread(cpu);
  if (tid == kInvalidThread) {
    return false;
  }
  const SchedEntity& se = sched_->Entity(tid);
  TaskState& ts = StateOf(tid);
  int prio = PrioOf(se.nice);
  if (ts.used + se.slice_exec >= TimesliceOf(prio)) {
    ts.expire_next = true;  // Slice exhausted: demote on requeue.
    return true;
  }
  // A waiting task of strictly higher priority (lower level) preempts
  // mid-slice; equal priority waits for the slice to end (round-robin).
  const CpuState& cs = cpus_[cpu];
  const PrioArray& act = cs.arrays[cs.active];
  int first = act.count > 0 ? act.FirstSet() : kLevels;
  return first < prio;
}

bool O1Policy::WakeupPreempts(Time now, CpuId cpu, const SchedEntity& woken) {
  (void)now;
  ThreadId tid = sched_->CurrentThread(cpu);
  if (tid == kInvalidThread) {
    return true;
  }
  return PrioOf(woken.nice) < PrioOf(sched_->Entity(tid).nice);
}

void O1Policy::OnRqEnqueue(Time now, CpuId cpu, SchedEntity* se,
                           CfsRunqueue::EnqueueKind kind) {
  (void)now;
  TaskState& ts = StateOf(se->tid);
  CpuState& cs = cpus_[cpu];
  int prio = PrioOf(se->nice);
  int arr = cs.active;
  if (kind == CfsRunqueue::EnqueueKind::kPutPrev) {
    if (ts.expire_next) {
      ts.expire_next = false;
      ts.used = 0;
      arr = 1 - cs.active;  // Into the expired array with a fresh slice.
    } else {
      ts.used += se->slice_exec;  // Charge the stint just finished.
    }
  } else {
    // Wake, fork, or migration: fresh slice in the active array.
    ts.used = 0;
    ts.expire_next = false;
  }
  cs.arrays[arr].Push(prio, se->tid);
  ts.array = static_cast<uint8_t>(arr);
  ts.prio = static_cast<uint8_t>(prio);
  ts.queued = true;
}

void O1Policy::OnRqDequeue(Time now, CpuId cpu, SchedEntity* se) {
  (void)now;
  TaskState& ts = StateOf(se->tid);
  WC_CHECK(ts.queued, "o1: dequeue of task not in the arrays");
  cpus_[cpu].arrays[ts.array].Remove(ts.prio, se->tid);
  ts.queued = false;
}

void O1Policy::OnRqPick(Time now, CpuId cpu, SchedEntity* se) {
  OnRqDequeue(now, cpu, se);  // curr lives outside the arrays, as in 2.6.8.
}

void O1Policy::OnRqReweight(Time now, CpuId cpu, SchedEntity* se, int old_nice) {
  (void)now;
  (void)old_nice;
  TaskState& ts = StateOf(se->tid);
  WC_CHECK(ts.queued, "o1: reweight of task not in the arrays");
  cpus_[cpu].arrays[ts.array].Remove(ts.prio, se->tid);
  int prio = PrioOf(se->nice);
  cpus_[cpu].arrays[ts.array].Push(prio, se->tid);
  ts.prio = static_cast<uint8_t>(prio);
}

int O1Policy::QueuedInArrays(CpuId cpu) const {
  const CpuState& cs = cpus_[cpu];
  return cs.arrays[0].count + cs.arrays[1].count;
}

bool O1Policy::ValidateArrays(CpuId cpu) const {
  const CpuState& cs = cpus_[cpu];
  for (const PrioArray& a : cs.arrays) {
    int count = 0;
    for (int p = 0; p < kLevels; ++p) {
      bool bit = (a.bitmap[p / 64] >> (p % 64)) & 1;
      if (bit != !a.queues[p].empty()) {
        return false;
      }
      count += static_cast<int>(a.queues[p].size());
    }
    if (count != a.count) {
      return false;
    }
  }
  return true;
}

}  // namespace wcores
