// A Linux 2.6.8-style O(1) scheduler as a SchedPolicy.
//
// The pre-CFS scheduler kept, per cpu, two arrays of 140 FIFO queues (one
// per static priority) with a bitmap of non-empty levels: pick-next is
// find-first-bit + dequeue-head, O(1). A task that exhausts its timeslice
// moves to the *expired* array; when the active array drains the two arrays
// swap — one epoch of round-robin per priority level.
//
// This policy mirrors runqueue membership into those arrays through the
// RqObserver events (the core's rb-tree stays authoritative: census,
// vruntime accounting, migration and tracing are untouched mechanism). Only
// the *decisions* change:
//   - pick-next: highest-priority FIFO head instead of vruntime leftmost;
//   - tick preemption: fixed per-priority timeslices (5..200 ms) with
//     expired-array demotion, plus immediate preemption by a waiting
//     higher-priority task;
//   - wakeup preemption: strictly-higher static priority preempts;
//   - wakeup placement: the 2.6.8 try_to_wake_up default — stay on the
//     previous cpu whatever its load. Like the real 2.6.8, only the
//     periodic/newidle/NOHZ balancers (inherited CFS mechanism) spread load,
//     so this policy exhibits wakeup stacking by design: the paper-bug
//     matrix test pins which pathologies it shows.
//
// Priorities: static_prio = 120 + nice, in [100, 139] for nice in [-20,19].
// Real-time levels 0..99 exist in the arrays but are never populated (the
// simulator has no RT class); keeping all 140 levels preserves the original
// bitmap layout (three 64-bit words).
#ifndef SRC_MODSCHED_O1_POLICY_H_
#define SRC_MODSCHED_O1_POLICY_H_

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "src/core/sched_policy.h"

namespace wcores {

class O1Policy : public SchedPolicy {
 public:
  const char* name() const override { return "o1"; }
  bool WantsQueueEvents() const override { return true; }
  void Attach(Scheduler* sched) override;

  CpuId SelectWakeCpu(Time now, const SchedEntity& se, CpuId waker_cpu,
                      CpuSet* considered) override;
  SchedEntity* PickNextEntity(Time now, CpuId cpu) override;
  bool TickPreempt(Time now, CpuId cpu) override;
  bool WakeupPreempts(Time now, CpuId cpu, const SchedEntity& woken) override;
  // Fork placement and all three balancers: CFS defaults inherited.

  void OnRqEnqueue(Time now, CpuId cpu, SchedEntity* se,
                   CfsRunqueue::EnqueueKind kind) override;
  void OnRqDequeue(Time now, CpuId cpu, SchedEntity* se) override;
  void OnRqPick(Time now, CpuId cpu, SchedEntity* se) override;
  void OnRqReweight(Time now, CpuId cpu, SchedEntity* se, int old_nice) override;

  static constexpr int kLevels = 140;
  static int PrioOf(int nice) { return 120 + nice; }
  // 2.6.8-flavoured static timeslices: 200 ms at the highest (nice -20)
  // shrinking linearly to 5 ms at the lowest (nice +19).
  Time TimesliceOf(int prio) const;

  // Introspection for tests.
  int QueuedInArrays(CpuId cpu) const;
  bool ValidateArrays(CpuId cpu) const;

 private:
  struct PrioArray {
    std::array<uint64_t, 3> bitmap{};
    std::array<std::deque<ThreadId>, kLevels> queues;
    int count = 0;

    int FirstSet() const;
    void Push(int prio, ThreadId tid);
    void Remove(int prio, ThreadId tid);
  };
  struct CpuState {
    PrioArray arrays[2];
    int active = 0;  // Index of the active array; 1-active is expired.
  };
  struct TaskState {
    Time used = 0;            // Runtime consumed in the current slice round.
    bool expire_next = false;  // Tick verdict: demote to expired on put-prev.
    uint8_t array = 0;         // Which array of its cpu it is filed in.
    uint8_t prio = 0;
    bool queued = false;
  };

  TaskState& StateOf(ThreadId tid);

  std::vector<CpuState> cpus_;
  std::deque<TaskState> tasks_;  // Indexed by tid, grown on first sight.
};

}  // namespace wcores

#endif  // SRC_MODSCHED_O1_POLICY_H_
