// A COREIDLE-style consolidate-then-idle policy (SNIPPETS.md §3).
//
// The COREIDLE framework steers work *away* from cores the policy wants
// idle: fork/exec/wakeup placement and periodic balancing all exclude the
// masked cores, so they can sink into deep C-states. This policy computes
// the mask online instead of taking it from userspace: the active set is
// the first K online cpus in id order (id order packs node 0 first), with
// K = total runnable threads + 1 — just enough cores to stay
// work-conserving, everything above K kept idle.
//
// Decisions changed vs CFS:
//   - wakeup/fork placement: pack onto the lowest-id idle cpu of the active
//     set (previous cpu preferred when it qualifies, for cache reuse), else
//     the least-occupied active cpu. All nodes are candidates, so the
//     Overload-on-Wakeup node-local blind spot does not exist here.
//   - balancing: the CFS balancers run only while some online cpu is
//     overloaded (nr_running >= 2). Once every thread has a core, balancing
//     is suppressed so the spread never undoes the consolidation.
//
// Pick-next, preemption, and all accounting stay CFS (inherited defaults).
#ifndef SRC_MODSCHED_COREIDLE_POLICY_H_
#define SRC_MODSCHED_COREIDLE_POLICY_H_

#include "src/core/sched_policy.h"

namespace wcores {

class CoreIdlePolicy : public SchedPolicy {
 public:
  const char* name() const override { return "coreidle"; }

  CpuId SelectWakeCpu(Time now, const SchedEntity& se, CpuId waker_cpu,
                      CpuSet* considered) override;
  CpuId SelectForkCpu(Time now, const SchedEntity& se, CpuId parent_cpu) override;
  void PeriodicBalance(Time now, CpuId cpu) override;
  void NewIdleBalance(Time now, CpuId cpu) override;
  void NohzBalance(Time now, CpuId cpu) override;

  // The cores the policy is currently willing to run work on (test/tool
  // introspection; recomputed per call).
  CpuSet ActiveSet() const;

 private:
  bool AnyOverloaded() const;
  CpuId Place(const SchedEntity& se, CpuId prev, CpuSet* considered) const;
};

}  // namespace wcores

#endif  // SRC_MODSCHED_COREIDLE_POLICY_H_
