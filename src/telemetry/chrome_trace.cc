#include "src/telemetry/chrome_trace.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

namespace wcores {

namespace {

const char* MigrationReasonName(uint8_t sub) {
  switch (static_cast<MigrationReason>(sub)) {
    case MigrationReason::kPeriodicBalance:
      return "periodic";
    case MigrationReason::kIdleBalance:
      return "idle";
    case MigrationReason::kNohzBalance:
      return "nohz";
    case MigrationReason::kHotplug:
      return "hotplug";
  }
  return "unknown";
}

// One line per trace record keeps the output diffable and the writer simple.
class EventWriter {
 public:
  void Meta(const std::string& body) { lines_.push_back(body); }

  void Append(char ph, double ts_us, int tid, const std::string& rest) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "\"ph\":\"%c\",\"ts\":%.3f,\"pid\":1,\"tid\":%d", ph, ts_us,
                  tid);
    std::string line = "{";
    line += buf;
    if (!rest.empty()) {
      line += ",";
      line += rest;
    }
    line += "}";
    lines_.push_back(std::move(line));
  }

  std::string Join() const {
    std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    for (size_t i = 0; i < lines_.size(); ++i) {
      out += lines_[i];
      if (i + 1 < lines_.size()) {
        out += ",";
      }
      out += "\n";
    }
    out += "]}\n";
    return out;
  }

 private:
  std::vector<std::string> lines_;
};

}  // namespace

std::string ChromeTraceJson(const std::vector<TraceEvent>& events, int n_cpus,
                            size_t max_events) {
  EventWriter w;
  char buf[192];
  size_t n_export = events.size();
  bool truncated = false;
  if (max_events > 0 && n_export > max_events) {
    n_export = max_events;
    truncated = true;
    std::fprintf(stderr,
                 "chrome_trace: trace has %zu events; exporting the first %zu and marking "
                 "the timeline truncated (raise max_events or use the streaming summary)\n",
                 events.size(), n_export);
  }

  w.Meta("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
         "\"args\":{\"name\":\"wasted-cores simulated machine\"}}");
  for (int c = 0; c < n_cpus; ++c) {
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,"
                  "\"args\":{\"name\":\"cpu %d\"}}",
                  c, c);
    w.Meta(buf);
  }

  // At most one thread runs per cpu, so slices cannot nest; an open-slice
  // map suffices to balance B/E records defensively.
  std::map<int, int> open_slice;  // cpu -> tid of the open 'B'.
  double last_ts = 0;
  for (size_t i = 0; i < n_export; ++i) {
    const TraceEvent& e = events[i];
    double ts = ToMicroseconds(e.when);
    last_ts = ts;
    switch (e.kind) {
      case TraceEvent::Kind::kNrRunning:
        std::snprintf(buf, sizeof(buf), "\"name\":\"rq size cpu%d\",\"args\":{\"size\":%.0f}",
                      e.cpu, e.value);
        w.Append('C', ts, e.cpu, buf);
        break;
      case TraceEvent::Kind::kLoad:
        std::snprintf(buf, sizeof(buf), "\"name\":\"rq load cpu%d\",\"args\":{\"load\":%.3f}",
                      e.cpu, e.value);
        w.Append('C', ts, e.cpu, buf);
        break;
      case TraceEvent::Kind::kSwitchIn: {
        auto it = open_slice.find(e.cpu);
        if (it != open_slice.end()) {
          std::snprintf(buf, sizeof(buf), "\"name\":\"tid %d\",\"cat\":\"sched\"", it->second);
          w.Append('E', ts, e.cpu, buf);
        }
        open_slice[e.cpu] = e.tid;
        std::snprintf(buf, sizeof(buf),
                      "\"name\":\"tid %d\",\"cat\":\"sched\",\"args\":{\"waited_us\":%.3f}",
                      e.tid, e.value / 1000.0);
        w.Append('B', ts, e.cpu, buf);
        break;
      }
      case TraceEvent::Kind::kSwitchOut: {
        auto it = open_slice.find(e.cpu);
        if (it == open_slice.end()) {
          break;  // Switch-out with no recorded switch-in; nothing to close.
        }
        std::snprintf(buf, sizeof(buf), "\"name\":\"tid %d\",\"cat\":\"sched\"", it->second);
        w.Append('E', ts, e.cpu, buf);
        open_slice.erase(it);
        break;
      }
      case TraceEvent::Kind::kMigration:
        std::snprintf(buf, sizeof(buf),
                      "\"name\":\"migrate tid %d\",\"cat\":\"sched\",\"s\":\"t\","
                      "\"args\":{\"from\":%d,\"to\":%d,\"reason\":\"%s\"}",
                      e.tid, e.cpu, e.cpu2, MigrationReasonName(e.sub));
        w.Append('i', ts, e.cpu2, buf);
        break;
      case TraceEvent::Kind::kWakeupLatency:
        std::snprintf(buf, sizeof(buf),
                      "\"name\":\"wakeup tid %d\",\"cat\":\"sched\",\"s\":\"t\","
                      "\"args\":{\"latency_us\":%.3f}",
                      e.tid, e.value / 1000.0);
        w.Append('i', ts, e.cpu, buf);
        break;
      case TraceEvent::Kind::kConsidered:
      case TraceEvent::Kind::kIdleEnter:
      case TraceEvent::Kind::kIdleExit:
        // Considered-sets and idle periods are legible from the heatmap tool
        // and the rq-size counter tracks; no timeline record.
        break;
    }
  }

  // Close slices still open at the end of the recording (or at the cut).
  for (const auto& [cpu, tid] : open_slice) {
    std::snprintf(buf, sizeof(buf), "\"name\":\"tid %d\",\"cat\":\"sched\"", tid);
    w.Append('E', last_ts, cpu, buf);
  }
  if (truncated) {
    std::snprintf(buf, sizeof(buf),
                  "\"name\":\"trace truncated\",\"cat\":\"meta\",\"s\":\"g\","
                  "\"args\":{\"exported_events\":%llu,\"dropped_events\":%llu}",
                  static_cast<unsigned long long>(n_export),
                  static_cast<unsigned long long>(events.size() - n_export));
    w.Append('i', last_ts, 0, buf);
  }
  return w.Join();
}

// ---- Minimal JSON parser ---------------------------------------------------

namespace {

class JsonParser {
 public:
  JsonParser(const std::string& text, std::string* error) : text_(text), error_(error) {}

  bool Parse(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out)) {
      return false;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      return Fail("trailing characters");
    }
    return true;
  }

 private:
  bool Fail(const char* what) {
    if (error_ != nullptr) {
      *error_ = std::string(what) + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue* out) {
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    char c = text_[pos_];
    if (c == '{') {
      return ParseObject(out);
    }
    if (c == '[') {
      return ParseArray(out);
    }
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->str);
    }
    if (c == 't' || c == 'f') {
      return ParseLiteral(c == 't' ? "true" : "false", out);
    }
    if (c == 'n') {
      return ParseLiteral("null", out);
    }
    return ParseNumber(out);
  }

  bool ParseLiteral(const char* lit, JsonValue* out) {
    size_t len = std::strlen(lit);
    if (text_.compare(pos_, len, lit) != 0) {
      return Fail("bad literal");
    }
    pos_ += len;
    if (lit[0] == 'n') {
      out->type = JsonValue::Type::kNull;
    } else {
      out->type = JsonValue::Type::kBool;
      out->boolean = lit[0] == 't';
    }
    return true;
  }

  bool ParseNumber(JsonValue* out) {
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    double v = std::strtod(start, &end);
    if (end == start || !std::isfinite(v)) {
      return Fail("bad number");
    }
    pos_ += static_cast<size_t>(end - start);
    out->type = JsonValue::Type::kNumber;
    out->number = v;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) {
      return Fail("expected string");
    }
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          break;
        }
        char esc = text_[pos_++];
        switch (esc) {
          case '"':
          case '\\':
          case '/':
            out->push_back(esc);
            break;
          case 'b':
            out->push_back('\b');
            break;
          case 'f':
            out->push_back('\f');
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 'r':
            out->push_back('\r');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return Fail("bad unicode escape");
            }
            // Keep escapes verbatim; the exporter never emits them.
            out->append("\\u");
            out->append(text_, pos_, 4);
            pos_ += 4;
            break;
          }
          default:
            return Fail("bad escape");
        }
      } else {
        out->push_back(c);
      }
    }
    return Fail("unterminated string");
  }

  bool ParseArray(JsonValue* out) {
    Consume('[');
    out->type = JsonValue::Type::kArray;
    SkipWs();
    if (Consume(']')) {
      return true;
    }
    for (;;) {
      out->array.emplace_back();
      SkipWs();
      if (!ParseValue(&out->array.back())) {
        return false;
      }
      SkipWs();
      if (Consume(']')) {
        return true;
      }
      if (!Consume(',')) {
        return Fail("expected ',' or ']'");
      }
    }
  }

  bool ParseObject(JsonValue* out) {
    Consume('{');
    out->type = JsonValue::Type::kObject;
    SkipWs();
    if (Consume('}')) {
      return true;
    }
    for (;;) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) {
        return false;
      }
      SkipWs();
      if (!Consume(':')) {
        return Fail("expected ':'");
      }
      SkipWs();
      out->object.emplace_back(std::move(key), JsonValue{});
      if (!ParseValue(&out->object.back().second)) {
        return false;
      }
      SkipWs();
      if (Consume('}')) {
        return true;
      }
      if (!Consume(',')) {
        return Fail("expected ',' or '}'");
      }
    }
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  for (const auto& [k, v] : object) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

bool ParseJson(const std::string& text, JsonValue* out, std::string* error) {
  *out = JsonValue{};
  return JsonParser(text, error).Parse(out);
}

ChromeTraceCheck CheckChromeTrace(const std::string& json) {
  ChromeTraceCheck check;
  JsonValue root;
  if (!ParseJson(json, &root, &check.error)) {
    return check;
  }
  check.valid_json = true;
  const JsonValue* events = root.Find("traceEvents");
  if (events == nullptr || events->type != JsonValue::Type::kArray) {
    check.error = "missing traceEvents array";
    return check;
  }

  check.ts_monotonic = true;
  check.slices_balanced = true;
  double last_ts = -1;
  std::map<double, int> depth_per_track;  // tid -> open 'B' depth.
  for (const JsonValue& e : events->array) {
    const JsonValue* ph = e.Find("ph");
    if (ph == nullptr || ph->type != JsonValue::Type::kString || ph->str.empty()) {
      check.error = "record without ph";
      check.slices_balanced = false;
      return check;
    }
    const JsonValue* ts = e.Find("ts");
    if (ts != nullptr && ts->type == JsonValue::Type::kNumber) {
      if (ts->number < last_ts) {
        check.ts_monotonic = false;
      }
      last_ts = ts->number;
    }
    const JsonValue* tid = e.Find("tid");
    double track = tid != nullptr ? tid->number : -1;
    const JsonValue* name = e.Find("name");
    switch (ph->str[0]) {
      case 'M':
        if (name != nullptr && name->str == "thread_name") {
          check.thread_name_records += 1;
        }
        break;
      case 'B':
        check.slices += 1;
        depth_per_track[track] += 1;
        break;
      case 'E':
        if (--depth_per_track[track] < 0) {
          check.slices_balanced = false;
        }
        break;
      case 'C':
        check.counters += 1;
        break;
      case 'i':
        check.instants += 1;
        break;
      default:
        break;
    }
  }
  for (const auto& [track, depth] : depth_per_track) {
    if (depth != 0) {
      check.slices_balanced = false;
    }
  }
  return check;
}

}  // namespace wcores
