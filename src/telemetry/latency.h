// Latency accounting (the telemetry subsystem's measurement side).
//
// The paper's diagnosis of every bug started from "cores idle while work
// waits"; this sink turns that observation into numbers a user can act on:
// per-thread and per-cpu distributions of
//   * wakeup latency   — wakeup -> first run (perf sched latency),
//   * runqueue wait    — runnable -> running (sched_stat_wait),
//   * timeslice        — how long each stint on a core lasted
//                        (sched_stat_runtime),
//   * migration cost   — migration -> first run on the new core,
// plus per-cpu idle occupancy. It is a TraceSink; attach it (alone or via
// MultiSink) to a Scheduler/Simulator and read the summaries afterwards.
#ifndef SRC_TELEMETRY_LATENCY_H_
#define SRC_TELEMETRY_LATENCY_H_

#include <cstdint>
#include <vector>

#include "src/core/trace.h"
#include "src/metrics/histogram.h"
#include "src/simkit/cpuset.h"
#include "src/simkit/time.h"

namespace wcores {

// One thread's or one cpu's latency distributions, in nanoseconds.
struct LatencyDistributions {
  Summary wakeup_latency;
  Summary rq_wait;
  Summary timeslice;
  Summary migration_cost;

  void Merge(const LatencyDistributions& other) {
    wakeup_latency.Merge(other.wakeup_latency);
    rq_wait.Merge(other.rq_wait);
    timeslice.Merge(other.timeslice);
    migration_cost.Merge(other.migration_cost);
  }
};

class LatencyAccountant : public TraceSink {
 public:
  explicit LatencyAccountant(int n_cpus) : per_cpu_(n_cpus), idle_time_(n_cpus, 0),
                                           idle_enters_(n_cpus, 0), migrations_(n_cpus, 0) {}

  // ---- TraceSink ----------------------------------------------------------

  void OnSwitchIn(Time now, CpuId cpu, ThreadId tid, Time waited) override;
  void OnSwitchOut(Time now, CpuId cpu, ThreadId tid, Time ran, bool still_runnable) override;
  void OnWakeupLatency(Time now, CpuId cpu, ThreadId tid, Time latency) override;
  void OnMigration(Time now, ThreadId tid, CpuId from, CpuId to, MigrationReason reason) override;
  void OnIdleEnter(Time now, CpuId cpu) override;
  void OnIdleExit(Time now, CpuId cpu, Time idle_for) override;

  // ---- Results ------------------------------------------------------------

  int n_cpus() const { return static_cast<int>(per_cpu_.size()); }
  const LatencyDistributions& Cpu(CpuId cpu) const { return per_cpu_[cpu]; }
  // Per-thread distributions; empty default for threads never seen.
  const LatencyDistributions& Thread(ThreadId tid) const;
  int known_threads() const { return static_cast<int>(per_thread_.size()); }

  // Aggregation over a cpu subset (a NUMA node) or the whole machine.
  LatencyDistributions AggregateCpus(const CpuSet& cpus) const;
  LatencyDistributions Machine() const;

  Time IdleTime(CpuId cpu) const { return idle_time_[cpu]; }
  uint64_t IdleEnters(CpuId cpu) const { return idle_enters_[cpu]; }
  uint64_t MigrationsInto(CpuId cpu) const { return migrations_[cpu]; }

 private:
  LatencyDistributions& ThreadSlot(ThreadId tid);

  std::vector<LatencyDistributions> per_cpu_;   // Indexed by cpu.
  std::vector<LatencyDistributions> per_thread_;  // Indexed by tid, grown on demand.
  std::vector<Time> idle_time_;
  std::vector<uint64_t> idle_enters_;
  std::vector<uint64_t> migrations_;  // Indexed by destination cpu.

  // Migration cost: a kMigration arms a per-thread stamp; the next switch-in
  // of that thread reports migration -> first run on the new core.
  struct PendingMigration {
    Time when = kTimeNever;
  };
  std::vector<PendingMigration> pending_migration_;  // Indexed by tid.
};

}  // namespace wcores

#endif  // SRC_TELEMETRY_LATENCY_H_
