// Compact binary trace records for the streaming telemetry pipeline.
//
// Every TraceSink callback is encoded into one fixed-size 24-byte POD so a
// bounded ring buffer of them has a bounded, predictable footprint — the
// in-simulator analogue of the perf/eBPF ringbuf record formats the SchedLab
// consumer model reads. The encoding is lossy only where the analytics allow
// it: a kConsidered record carries the popcount of the considered set, not
// the set itself (the streaming aggregates never need the individual cores,
// and a CpuSet would quadruple the record size).
#ifndef SRC_TELEMETRY_STREAM_RECORD_H_
#define SRC_TELEMETRY_STREAM_RECORD_H_

#include <cstdint>
#include <cstring>

#include "src/simkit/time.h"

namespace wcores {

enum class StreamKind : uint8_t {
  kNrRunning,      // value = new runqueue size of `cpu`.
  kLoad,           // value = bit pattern of the new load (double).
  kConsidered,     // value = popcount of the considered set; sub = kind.
  kMigration,      // value = destination cpu; cpu = source; sub = reason.
  kSwitchIn,       // value = ns waited queued before running on `cpu`.
  kSwitchOut,      // value = ns ran; sub = 1 if still runnable.
  kWakeupLatency,  // value = ns from wakeup to first run.
  kIdleEnter,      // `cpu` ran out of work.
  kIdleExit,       // value = ns `cpu` sat idle.
};

struct StreamRecord {
  Time when = 0;       // 8B: virtual timestamp, nanoseconds.
  uint64_t value = 0;  // 8B: payload; meaning depends on `kind` (above).
  int32_t tid = -1;    // 4B: thread, or -1 for cpu-only records.
  int16_t cpu = -1;    // 2B: cpu (source cpu for kMigration).
  StreamKind kind = StreamKind::kNrRunning;  // 1B.
  uint8_t sub = 0;     // 1B: ConsideredKind / MigrationReason / runnable bit.
};

static_assert(sizeof(StreamRecord) == 24, "StreamRecord must stay compact");

// kLoad payload: the double's bit pattern, so the record stays one integer
// word and the round-trip is exact.
inline uint64_t PackLoad(double load) {
  uint64_t bits = 0;
  std::memcpy(&bits, &load, sizeof(bits));
  return bits;
}

inline double UnpackLoad(uint64_t bits) {
  double load = 0;
  std::memcpy(&load, &bits, sizeof(load));
  return load;
}

}  // namespace wcores

#endif  // SRC_TELEMETRY_STREAM_RECORD_H_
