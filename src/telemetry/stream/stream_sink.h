// TelemetryStream: the TraceSink facade of the streaming pipeline.
//
// Producer side of the bounded pipeline: every trace callback is encoded
// into a 24-byte StreamRecord and pushed into the SPSC ring; the
// StreamAnalyzer drains the ring and folds each record into its O(1)
// incremental aggregates. When the ring fills, the sink either drains it
// in-line (the in-process default — no loss, still bounded) or, with
// drain_on_full off (a threaded consumer, or the tests exercising loss
// accounting), counts the drop explicitly.
//
// Attach alone or via MultiSink; the stream never mutates scheduler state,
// so trace hashes are byte-identical with or without it. Call Finish(now)
// after the run, then SummaryJson() for the one-line machine-readable
// summary.
#ifndef SRC_TELEMETRY_STREAM_STREAM_SINK_H_
#define SRC_TELEMETRY_STREAM_STREAM_SINK_H_

#include <string>

#include "src/core/trace.h"
#include "src/telemetry/stream/analyzer.h"
#include "src/telemetry/stream/record.h"
#include "src/telemetry/stream/ring.h"

namespace wcores {

class Topology;

class TelemetryStream : public TraceSink {
 public:
  struct Options {
    size_t ring_capacity = 1 << 16;  // Records; 24B each -> 1.5 MiB default.
    bool drain_on_full = true;
    StreamAnalyzer::Options analyzer;
  };

  // Convenience: options wired for `topo` (n_cpus + cpu->node map).
  static Options ForTopology(const Topology& topo,
                             Time starvation_horizon = Milliseconds(100));

  explicit TelemetryStream(Options opts)
      : drain_on_full_(opts.drain_on_full), ring_(opts.ring_capacity),
        analyzer_(std::move(opts.analyzer)) {}

  // ---- TraceSink ----------------------------------------------------------

  void OnNrRunning(Time now, CpuId cpu, int nr_running) override {
    Push(StreamRecord{now, static_cast<uint64_t>(nr_running), -1,
                      static_cast<int16_t>(cpu), StreamKind::kNrRunning, 0});
  }
  void OnLoad(Time now, CpuId cpu, double load) override {
    Push(StreamRecord{now, PackLoad(load), -1, static_cast<int16_t>(cpu), StreamKind::kLoad, 0});
  }
  void OnConsidered(Time now, CpuId initiator, const CpuSet& considered,
                    ConsideredKind kind) override {
    Push(StreamRecord{now, static_cast<uint64_t>(considered.Count()), -1,
                      static_cast<int16_t>(initiator), StreamKind::kConsidered,
                      static_cast<uint8_t>(kind)});
  }
  void OnMigration(Time now, ThreadId tid, CpuId from, CpuId to, MigrationReason reason) override {
    Push(StreamRecord{now, static_cast<uint64_t>(to), tid, static_cast<int16_t>(from),
                      StreamKind::kMigration, static_cast<uint8_t>(reason)});
  }
  void OnSwitchIn(Time now, CpuId cpu, ThreadId tid, Time waited) override {
    Push(StreamRecord{now, waited, tid, static_cast<int16_t>(cpu), StreamKind::kSwitchIn, 0});
  }
  void OnSwitchOut(Time now, CpuId cpu, ThreadId tid, Time ran, bool still_runnable) override {
    Push(StreamRecord{now, ran, tid, static_cast<int16_t>(cpu), StreamKind::kSwitchOut,
                      static_cast<uint8_t>(still_runnable ? 1 : 0)});
  }
  void OnWakeupLatency(Time now, CpuId cpu, ThreadId tid, Time latency) override {
    Push(StreamRecord{now, latency, tid, static_cast<int16_t>(cpu), StreamKind::kWakeupLatency, 0});
  }
  void OnIdleEnter(Time now, CpuId cpu) override {
    Push(StreamRecord{now, 0, -1, static_cast<int16_t>(cpu), StreamKind::kIdleEnter, 0});
  }
  void OnIdleExit(Time now, CpuId cpu, Time idle_for) override {
    Push(StreamRecord{now, idle_for, -1, static_cast<int16_t>(cpu), StreamKind::kIdleExit, 0});
  }

  // ---- Pipeline control ---------------------------------------------------

  // Drains outstanding records and closes the analyzer at virtual time
  // `end` (deadline sweep + span flush). Idempotent per run.
  void Finish(Time end) {
    Drain();
    analyzer_.Finish(end);
  }

  // Events offered by the trace; events_seen() - ring().dropped() were
  // analyzed.
  uint64_t events_seen() const { return events_seen_; }

  const SpscRing& ring() const { return ring_; }
  StreamAnalyzer& analyzer() { return analyzer_; }
  const StreamAnalyzer& analyzer() const { return analyzer_; }

  std::string SummaryJson() const {
    return analyzer_.SummaryJson(ring_.capacity(), ring_.dropped());
  }

 private:
  void Push(const StreamRecord& rec) {
    ++events_seen_;
    if (ring_.TryPush(rec)) {
      return;
    }
    if (drain_on_full_) {
      Drain();
      if (ring_.TryPush(rec)) {
        return;
      }
    }
    ring_.CountDrop();
  }

  void Drain() {
    StreamRecord rec;
    while (ring_.TryPop(&rec)) {
      analyzer_.Consume(rec);
    }
  }

  bool drain_on_full_;
  SpscRing ring_;
  StreamAnalyzer analyzer_;
  uint64_t events_seen_ = 0;
};

}  // namespace wcores

#endif  // SRC_TELEMETRY_STREAM_STREAM_SINK_H_
