#include "src/telemetry/stream/quantile.h"

#include <algorithm>

namespace wcores {

void P2Quantile::Add(double x) {
  if (count_ < 5) {
    q_[count_] = x;
    ++count_;
    if (count_ == 5) {
      std::sort(q_, q_ + 5);
      // pos_ is already {1..5}; set the desired positions for p_.
      want_[0] = 1;
      want_[1] = 1 + 2 * p_;
      want_[2] = 1 + 4 * p_;
      want_[3] = 3 + 2 * p_;
      want_[4] = 5;
      step_[0] = 0;
      step_[1] = p_ / 2;
      step_[2] = p_;
      step_[3] = (1 + p_) / 2;
      step_[4] = 1;
    }
    return;
  }

  // Locate the cell containing x, extending the extremes if needed.
  int k;
  if (x < q_[0]) {
    q_[0] = x;
    k = 0;
  } else if (x >= q_[4]) {
    if (x > q_[4]) {
      q_[4] = x;
    }
    k = 3;
  } else {
    k = 0;
    while (k < 3 && !(x < q_[k + 1])) {
      ++k;
    }
  }

  ++count_;
  for (int i = k + 1; i < 5; ++i) {
    pos_[i] += 1;
  }
  for (int i = 0; i < 5; ++i) {
    want_[i] += step_[i];
  }

  // Nudge interior markers toward their desired positions.
  for (int i = 1; i <= 3; ++i) {
    double d = want_[i] - pos_[i];
    if ((d >= 1 && pos_[i + 1] - pos_[i] > 1) || (d <= -1 && pos_[i - 1] - pos_[i] < -1)) {
      double dir = d >= 1 ? 1 : -1;
      double cand = Parabolic(i, dir);
      if (!(q_[i - 1] < cand && cand < q_[i + 1])) {
        cand = Linear(i, dir);
      }
      q_[i] = cand;
      pos_[i] += dir;
    }
  }
}

double P2Quantile::Parabolic(int i, double d) const {
  double np = pos_[i + 1];
  double nm = pos_[i - 1];
  double n = pos_[i];
  return q_[i] + d / (np - nm) *
                     ((n - nm + d) * (q_[i + 1] - q_[i]) / (np - n) +
                      (np - n - d) * (q_[i] - q_[i - 1]) / (n - nm));
}

double P2Quantile::Linear(int i, double d) const {
  int j = i + static_cast<int>(d);
  return q_[i] + d * (q_[j] - q_[i]) / (pos_[j] - pos_[i]);
}

double P2Quantile::Value() const {
  if (count_ == 0) {
    return 0.0;
  }
  if (count_ >= 5) {
    return q_[2];
  }
  // Exact small-sample path, matching Summary::Quantile's interpolation so
  // the parity test holds from the first sample on.
  double sorted[5];
  std::copy(q_, q_ + count_, sorted);
  std::sort(sorted, sorted + count_);
  double fpos = p_ * static_cast<double>(count_ - 1);
  auto lo = static_cast<uint64_t>(fpos);
  uint64_t hi = lo + 1 < count_ ? lo + 1 : count_ - 1;
  double frac = fpos - static_cast<double>(lo);
  return sorted[lo] * (1 - frac) + sorted[hi] * frac;
}

}  // namespace wcores
