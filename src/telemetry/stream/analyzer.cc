#include "src/telemetry/stream/analyzer.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <ostream>

namespace wcores {

namespace {

const StreamAnalyzer::TaskStats kEmptyTask;

}  // namespace

StreamAnalyzer::StreamAnalyzer(Options opts) : opts_(std::move(opts)) {
  cpus_.resize(opts_.n_cpus > 0 ? opts_.n_cpus : 1);
  int max_node = 0;
  for (int node : opts_.cpu_node) {
    max_node = std::max(max_node, node);
  }
  nodes_.resize(max_node + 1);
  open_.resize(cpus_.size());
  spans_.resize(opts_.span_capacity > 0 ? opts_.span_capacity : 1);
  findings_.reserve(opts_.max_stored_findings);
  heap_.reserve(64);
  UpdatePeak();
}

StreamAnalyzer::TaskStats& StreamAnalyzer::Slot(ThreadId tid) {
  if (tid >= static_cast<ThreadId>(tasks_.size())) {
    tasks_.resize(tid + 1);
    UpdatePeak();
  }
  TaskStats& t = tasks_[tid];
  t.seen = true;
  return t;
}

const StreamAnalyzer::TaskStats& StreamAnalyzer::Task(ThreadId tid) const {
  if (tid < 0 || tid >= static_cast<ThreadId>(tasks_.size())) {
    return kEmptyTask;
  }
  return tasks_[tid];
}

StreamAnalyzer::ScopeStats& StreamAnalyzer::NodeOf(CpuId cpu) {
  size_t node = 0;
  if (cpu >= 0 && static_cast<size_t>(cpu) < opts_.cpu_node.size()) {
    node = static_cast<size_t>(opts_.cpu_node[cpu]);
  }
  return nodes_[node < nodes_.size() ? node : 0];
}

void StreamAnalyzer::Consume(const StreamRecord& rec) {
  ProcessDeadlines(rec.when);
  last_when_ = rec.when;
  ++events_;

  const bool cpu_ok = rec.cpu >= 0 && static_cast<size_t>(rec.cpu) < cpus_.size();
  switch (rec.kind) {
    case StreamKind::kSwitchIn: {
      TaskStats& t = Slot(rec.tid);
      Time waited = rec.value;
      t.wait_ns += waited;
      t.rq_wait.Add(waited);
      if (cpu_ok) {
        cpus_[rec.cpu].rq_wait.Add(waited);
        NodeOf(rec.cpu).rq_wait.Add(waited);
      }
      machine_.rq_wait.Add(waited);
      // Wakeup-origin starvation is only visible here, retroactively: the
      // queued wait ended at least `waited` after it began.
      if (waited >= opts_.starvation_horizon && !t.flagged) {
        RaiseFinding(rec.tid, rec.when - waited, rec.when, waited, /*retroactive=*/true);
      }
      t.waiting_since = kTimeNever;
      t.flagged = false;
      if (cpu_ok) {
        open_[rec.cpu] = OpenSpan{rec.tid, rec.when, waited};
      }
      break;
    }
    case StreamKind::kSwitchOut: {
      TaskStats& t = Slot(rec.tid);
      Time ran = rec.value;
      t.runtime_ns += ran;
      t.oncpu.Add(ran);
      ++t.switches;
      if (cpu_ok) {
        ScopeStats& c = cpus_[rec.cpu];
        c.oncpu.Add(ran);
        ++c.switches;
        ScopeStats& n = NodeOf(rec.cpu);
        n.oncpu.Add(ran);
        ++n.switches;
      }
      machine_.oncpu.Add(ran);
      ++machine_.switches;
      if (rec.sub != 0) {
        // Preempted while runnable: the starvation clock starts now.
        t.waiting_since = rec.when;
        ++t.epoch;
        if (!t.queued) {
          PushDeadline(rec.when + opts_.starvation_horizon, rec.tid, t.epoch);
          t.queued = true;
        }
      } else {
        t.waiting_since = kTimeNever;
      }
      if (cpu_ok && open_[rec.cpu].tid == rec.tid) {
        EmitSpan(open_[rec.cpu].start, rec.when, rec.tid, rec.cpu, rec.sub != 0);
        open_[rec.cpu].tid = -1;
      }
      break;
    }
    case StreamKind::kWakeupLatency: {
      TaskStats& t = Slot(rec.tid);
      ++t.wakeups;
      ++wakeups_;
      if (t.last_wake_cpu >= 0 && t.last_wake_cpu != rec.cpu) {
        ++t.wakeup_moves;
      }
      t.last_wake_cpu = rec.cpu;
      if (cpu_ok) {
        cpus_[rec.cpu].wakeup.Add(rec.value);
        NodeOf(rec.cpu).wakeup.Add(rec.value);
      }
      machine_.wakeup.Add(rec.value);
      break;
    }
    case StreamKind::kMigration: {
      ++Slot(rec.tid).migrations;
      ++migrations_;
      break;
    }
    case StreamKind::kIdleExit:
      idle_ns_ += rec.value;
      break;
    case StreamKind::kNrRunning:
    case StreamKind::kLoad:
    case StreamKind::kConsidered:
    case StreamKind::kIdleEnter:
      break;  // Counted in events_; no aggregate consumes them yet.
  }
}

void StreamAnalyzer::Finish(Time end) {
  ProcessDeadlines(end);
  last_when_ = std::max(last_when_, end);
  FlushSpans();
  UpdatePeak();
}

// std::push_heap builds a max-heap; invert a total order on (deadline, tid,
// epoch) to pop the earliest deadline deterministically even on ties.
bool StreamAnalyzer::HeapOrder(const Deadline& a, const Deadline& b) {
  if (b.at != a.at) {
    return b.at < a.at;
  }
  if (b.tid != a.tid) {
    return b.tid < a.tid;
  }
  return b.epoch < a.epoch;
}

void StreamAnalyzer::PushDeadline(Time at, ThreadId tid, uint32_t epoch) {
  // wc-lint: allow(D7 deadline heap holds at most one live entry per task — O(tasks) by contract)
  heap_.push_back(Deadline{at, tid, epoch});
  std::push_heap(heap_.begin(), heap_.end(), HeapOrder);
  UpdatePeak();
}

void StreamAnalyzer::ProcessDeadlines(Time now) {
  while (!heap_.empty() && heap_.front().at <= now) {
    Deadline d = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), HeapOrder);
    heap_.pop_back();
    if (d.tid < 0 || d.tid >= static_cast<ThreadId>(tasks_.size())) {
      continue;
    }
    TaskStats& t = tasks_[d.tid];
    t.queued = false;
    if (t.waiting_since == kTimeNever) {
      continue;  // The episode ended (ran or blocked) before the horizon.
    }
    if (t.epoch == d.epoch) {
      // Still runnable-but-off-cpu since the arming preemption: starving.
      if (!t.flagged) {
        RaiseFinding(d.tid, t.waiting_since, d.at, d.at - t.waiting_since,
                     /*retroactive=*/false);
        t.flagged = true;
      }
    } else {
      // A newer episode started in between; re-arm for it.
      PushDeadline(t.waiting_since + opts_.starvation_horizon, d.tid, t.epoch);
      t.queued = true;
    }
  }
}

void StreamAnalyzer::RaiseFinding(ThreadId tid, Time since, Time detected_at, Time waited,
                                  bool retroactive) {
  ++findings_total_;
  worst_wait_ = std::max(worst_wait_, waited);
  if (findings_.size() < opts_.max_stored_findings) {
    StreamFinding f;
    f.tid = tid;
    f.since = since;
    f.detected_at = detected_at;
    f.waited = waited;
    f.retroactive = retroactive;
    if (opts_.snapshot) {
      f.digest = opts_.snapshot();
    }
    // wc-lint: allow(D7 findings are capped at max_stored_findings and reserved at construction)
    findings_.push_back(std::move(f));
    UpdatePeak();
  }
}

void StreamAnalyzer::EmitSpan(Time start, Time end, ThreadId tid, CpuId cpu, bool preempted) {
  Span& s = spans_[spans_buffered_];
  s.start = start;
  s.end = end;
  s.tid = tid;
  s.cpu = static_cast<int16_t>(cpu);
  s.preempted = preempted ? 1 : 0;
  if (++spans_buffered_ == spans_.size()) {
    FlushSpans();
  }
}

void StreamAnalyzer::FlushSpans() {
  if (opts_.span_out != nullptr) {
    char line[96];
    for (size_t i = 0; i < spans_buffered_; ++i) {
      const Span& s = spans_[i];
      std::snprintf(line, sizeof(line), "%d,%d,%" PRIu64 ",%" PRIu64 ",%u\n", s.tid, s.cpu,
                    s.start, s.end, s.preempted);
      *opts_.span_out << line;
    }
  }
  spans_emitted_ += spans_buffered_;
  spans_buffered_ = 0;
}

uint64_t StreamAnalyzer::AggregatorBytes() const {
  uint64_t bytes = sizeof(*this);
  bytes += tasks_.capacity() * sizeof(TaskStats);
  bytes += cpus_.capacity() * sizeof(ScopeStats);
  bytes += nodes_.capacity() * sizeof(ScopeStats);
  bytes += opts_.cpu_node.capacity() * sizeof(int);
  bytes += open_.capacity() * sizeof(OpenSpan);
  bytes += spans_.capacity() * sizeof(Span);
  bytes += heap_.capacity() * sizeof(Deadline);
  bytes += findings_.capacity() * sizeof(StreamFinding);
  for (const StreamFinding& f : findings_) {
    bytes += f.digest.capacity();
  }
  return bytes;
}

uint64_t StreamAnalyzer::BudgetBytes() const {
  // Linear in (tasks, cpus, nodes) with constants the structures themselves
  // dictate: 2x on each vector for amortized-doubling slack, a fixed base
  // for the analyzer body, the span window, and the findings cap (digest
  // strings included at 512B each).
  uint64_t per_task = 2 * (sizeof(TaskStats) + sizeof(Deadline)) + 64;
  uint64_t per_scope = 2 * sizeof(ScopeStats) + 2 * sizeof(OpenSpan) + sizeof(int);
  return 256 * 1024 + tasks_.size() * per_task +
         (cpus_.size() + nodes_.size() + 1) * per_scope +
         spans_.capacity() * sizeof(Span) +
         opts_.max_stored_findings * (sizeof(StreamFinding) + 512);
}

void StreamAnalyzer::UpdatePeak() {
  peak_bytes_ = std::max(peak_bytes_, AggregatorBytes());
}

namespace {

void AppendU64(std::string* out, const char* key, uint64_t v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%" PRIu64, key, v);
  *out += buf;
}

void AppendDist(std::string* out, const char* key, const StreamingDistribution& d) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "\"%s\":{\"count\":%" PRIu64 ",\"mean_ns\":%.1f,\"min_ns\":%" PRIu64
                ",\"p50_ns\":%.1f,\"p95_ns\":%.1f,\"p99_ns\":%.1f,\"max_ns\":%" PRIu64 "}",
                key, d.count, d.Mean(), d.count == 0 ? 0 : d.min_ns, d.p50.Value(),
                d.p95.Value(), d.p99.Value(), d.max_ns);
  *out += buf;
}

}  // namespace

std::string StreamAnalyzer::SummaryJson(uint64_t ring_capacity, uint64_t ring_dropped) const {
  std::string out = "{";
  AppendU64(&out, "events", events_);
  out += ",";
  AppendU64(&out, "ring_capacity", ring_capacity);
  out += ",";
  AppendU64(&out, "ring_dropped", ring_dropped);
  out += ",";
  AppendU64(&out, "tasks", tasks_.size());
  out += ",";
  AppendU64(&out, "cpus", cpus_.size());
  out += ",";
  AppendU64(&out, "nodes", nodes_.size());
  out += ",";
  AppendU64(&out, "agg_bytes_peak", PeakAggregatorBytes());
  out += ",";
  AppendU64(&out, "budget_bytes", BudgetBytes());
  out += ",\"within_budget\":";
  out += WithinBudget() ? "true" : "false";
  out += ",\"machine\":{";
  AppendDist(&out, "rq_wait", machine_.rq_wait);
  out += ",";
  AppendDist(&out, "oncpu", machine_.oncpu);
  out += ",";
  AppendDist(&out, "wakeup", machine_.wakeup);
  out += "},\"totals\":{";
  AppendU64(&out, "runtime_ns", machine_.oncpu.sum_ns);
  out += ",";
  AppendU64(&out, "wait_ns", machine_.rq_wait.sum_ns);
  out += ",";
  AppendU64(&out, "switches", machine_.switches);
  out += ",";
  AppendU64(&out, "wakeups", wakeups_);
  out += ",";
  AppendU64(&out, "migrations", migrations_);
  out += ",";
  AppendU64(&out, "idle_ns", idle_ns_);
  out += ",";
  AppendU64(&out, "spans_emitted", spans_emitted_);
  out += "},\"starvation\":{";
  AppendU64(&out, "horizon_ns", opts_.starvation_horizon);
  out += ",";
  AppendU64(&out, "findings", findings_total_);
  out += ",";
  AppendU64(&out, "worst_wait_ns", worst_wait_);
  out += "}}";
  return out;
}

}  // namespace wcores
