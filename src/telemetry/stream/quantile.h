// Streaming quantile sketches for the bounded-memory telemetry pipeline.
//
// P2Quantile is the P² algorithm (Jain & Chlamtac, CACM 1985): five markers
// track the running p-quantile in O(1) time and O(1) space per observation,
// adjusting interior markers with a piecewise-parabolic fit. Exact for the
// first five samples, an estimate afterwards.
//
// Error bounds (documented, and pinned by the parity test in
// tests/telemetry/stream_test.cc against the exact batch Summary): on the
// simulator's latency distributions — heavy-tailed mixtures of timeslice
// quanta — the estimate satisfies, at each quoted rank, at least one of
//   * rank error: the estimate's exact rank in the batch sample set is
//     within 0.10 of the target for p50 and within 0.05 for p95/p99
//     (i.i.d.-ish streams do much better: the uniform-stream test pins
//     0.02 at all three ranks), or
//   * absolute error <= 50 us — the escape hatch for distributions that
//     concentrate most of their mass inside one scheduling quantum (e.g.
//     rq-wait with the group-imbalance fix applied, where half the samples
//     are ~0 and rank error is not a meaningful metric).
// P² is NOT a guaranteed-error sketch (GK is; it costs O(log n) space); it
// was chosen because the O(1)-space determinism matters more here than tight
// rank guarantees. Sketches at different ranks are independent, so the
// estimates are not forced to be monotone across ranks on strongly bimodal
// inputs. Consumers needing certified ranks re-run with the batch
// LatencyAccountant.
//
// Determinism: pure arithmetic on the sample stream — same records in the
// same order give bit-identical markers. No allocation after construction.
#ifndef SRC_TELEMETRY_STREAM_QUANTILE_H_
#define SRC_TELEMETRY_STREAM_QUANTILE_H_

#include <cstdint>

#include "src/simkit/time.h"

namespace wcores {

class P2Quantile {
 public:
  explicit P2Quantile(double p) : p_(p) {}

  void Add(double x);

  // Current estimate; exact (linear-interpolated, matching Summary::Quantile)
  // while fewer than five samples have arrived. 0 when empty.
  double Value() const;

  uint64_t count() const { return count_; }

 private:
  double Parabolic(int i, double d) const;
  double Linear(int i, double d) const;

  double p_;
  uint64_t count_ = 0;
  double q_[5] = {0, 0, 0, 0, 0};     // Marker heights.
  double pos_[5] = {1, 2, 3, 4, 5};   // Marker positions (1-based).
  double want_[5] = {0, 0, 0, 0, 0};  // Desired positions.
  double step_[5] = {0, 0, 0, 0, 0};  // Desired-position increments.
};

// One metric's streaming summary: exact count/sum/min/max plus P² sketches
// at the three ranks the schedstat reports quote. ~0.5 KiB, O(1) per sample.
struct StreamingDistribution {
  uint64_t count = 0;
  uint64_t sum_ns = 0;
  uint64_t min_ns = kTimeNever;
  uint64_t max_ns = 0;
  P2Quantile p50{0.50};
  P2Quantile p95{0.95};
  P2Quantile p99{0.99};

  void Add(uint64_t ns) {
    ++count;
    sum_ns += ns;
    if (ns < min_ns) {
      min_ns = ns;
    }
    if (ns > max_ns) {
      max_ns = ns;
    }
    double v = static_cast<double>(ns);
    p50.Add(v);
    p95.Add(v);
    p99.Add(v);
  }

  double Mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum_ns) / static_cast<double>(count);
  }
};

}  // namespace wcores

#endif  // SRC_TELEMETRY_STREAM_QUANTILE_H_
