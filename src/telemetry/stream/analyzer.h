// The streaming analytics consumer: one pass over StreamRecords, O(1) work
// per record, O(tasks + cpus) memory — the replacement for whole-trace
// post-processing on runs too large to buffer.
//
// Maintains, incrementally:
//   * per-task accumulators — runtime, queued wait, context switches,
//     wakeups (and wakeup placement moves), migrations — plus P² sketches of
//     rq-wait and on-cpu stint length per task;
//   * the same two sketches per cpu, per NUMA node, and machine-wide, plus a
//     machine wakeup-latency sketch;
//   * a windowed Gantt/timeline emitter that flushes completed spans
//     (tid, cpu, start, end, preempted) to an output stream instead of
//     retaining the trace;
//   * an online starvation detector (second invariant monitor next to
//     src/tools/sanity_checker.h): a task observed runnable but off-cpu for
//     longer than a configurable horizon raises a finding carrying a digest
//     from the same snapshot-provider machinery the sanity checker uses.
//
// Starvation semantics (see DESIGN.md "Streaming telemetry"): the trace
// shows a task runnable-but-off-cpu from a preemption (OnSwitchOut with
// still_runnable) until its next OnSwitchIn. Such episodes are detected
// *live*, in virtual time, when the horizon expires — independent of when
// the ring is drained. A task whose queued wait began with a wakeup is
// invisible until it first runs; those episodes are confirmed
// retroactively at switch-in from the `waited` payload. Each episode yields
// at most one finding.
//
// Everything is indexed by dense ids (tid, cpu, node) — never by pointer,
// never hashed — so consumption order is the record order and the analyzer
// is deterministic by construction.
#ifndef SRC_TELEMETRY_STREAM_ANALYZER_H_
#define SRC_TELEMETRY_STREAM_ANALYZER_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/core/entity.h"
#include "src/simkit/time.h"
#include "src/telemetry/stream/quantile.h"
#include "src/telemetry/stream/record.h"

namespace wcores {

// One confirmed starvation episode.
struct StreamFinding {
  ThreadId tid = -1;
  Time since = 0;        // When the task became runnable-but-off-cpu.
  Time detected_at = 0;  // Horizon expiry (live) or first run (retroactive).
  Time waited = 0;       // Off-cpu-while-runnable time at detection.
  bool retroactive = false;
  std::string digest;  // Snapshot provider output at detection, if set.
};

class StreamAnalyzer {
 public:
  struct Options {
    int n_cpus = 0;
    // Node index per cpu; empty means a single node.
    std::vector<int> cpu_node;
    Time starvation_horizon = Milliseconds(100);
    // Called when a finding is confirmed; the result is stored in
    // StreamFinding::digest (same contract as SanityChecker's
    // latency_snapshot, so both monitors attach the same evidence).
    std::function<std::string()> snapshot;
    // Completed Gantt spans are flushed here as CSV lines when the window
    // fills; null discards them (they are still counted).
    std::ostream* span_out = nullptr;
    size_t span_capacity = 4096;
    size_t max_stored_findings = 32;
  };

  struct TaskStats {
    uint64_t runtime_ns = 0;  // Sum of realized stints (OnSwitchOut ran).
    uint64_t wait_ns = 0;     // Sum of queued waits (OnSwitchIn waited).
    uint64_t switches = 0;
    uint64_t wakeups = 0;
    uint64_t wakeup_moves = 0;  // Wakeup placed on a different cpu than last.
    uint64_t migrations = 0;
    StreamingDistribution rq_wait;
    StreamingDistribution oncpu;
    // Starvation bookkeeping.
    Time waiting_since = kTimeNever;
    uint32_t epoch = 0;
    int16_t last_wake_cpu = -1;
    bool queued = false;   // Has a live entry in the deadline heap.
    bool flagged = false;  // Current episode already produced a finding.
    bool seen = false;
  };

  struct ScopeStats {
    StreamingDistribution rq_wait;
    StreamingDistribution oncpu;
    StreamingDistribution wakeup;
    uint64_t switches = 0;
  };

  explicit StreamAnalyzer(Options opts);

  // Consume one record. Records must arrive in nondecreasing `when` order
  // (the trace callbacks fire in virtual-time order).
  void Consume(const StreamRecord& rec);

  // Drains the deadline heap up to `end` and flushes the span window. Call
  // once, after the last record.
  void Finish(Time end);

  // ---- Results ------------------------------------------------------------

  uint64_t events() const { return events_; }
  int n_cpus() const { return static_cast<int>(cpus_.size()); }
  int n_nodes() const { return static_cast<int>(nodes_.size()); }
  // Number of task slots (max tid + 1 observed).
  size_t tasks() const { return tasks_.size(); }
  const TaskStats& Task(ThreadId tid) const;
  const ScopeStats& Cpu(CpuId cpu) const { return cpus_[cpu]; }
  const ScopeStats& Node(int node) const { return nodes_[node]; }
  const ScopeStats& Machine() const { return machine_; }

  uint64_t migrations() const { return migrations_; }
  uint64_t wakeups() const { return wakeups_; }
  uint64_t spans_emitted() const { return spans_emitted_; }
  Time idle_ns() const { return idle_ns_; }

  const std::vector<StreamFinding>& findings() const { return findings_; }
  uint64_t findings_total() const { return findings_total_; }
  Time worst_wait() const { return worst_wait_; }
  Time starvation_horizon() const { return opts_.starvation_horizon; }

  // ---- Memory contract ----------------------------------------------------

  // Exact current footprint of every growable structure, from capacities.
  uint64_t AggregatorBytes() const;
  // High-water mark of AggregatorBytes over the run.
  uint64_t PeakAggregatorBytes() const { return peak_bytes_; }
  // The O(tasks + cpus) budget the footprint must stay under: a fixed base
  // plus linear terms in observed tasks and configured cpus/nodes (each with
  // a 2x factor covering vector doubling). CI asserts peak <= budget.
  uint64_t BudgetBytes() const;
  bool WithinBudget() const { return PeakAggregatorBytes() <= BudgetBytes(); }

  // One JSON object on one line: counters, per-scope percentile estimates,
  // the memory contract, and the starvation verdict. Ring stats are passed
  // in by the owning sink. Stable key order, deterministic values.
  std::string SummaryJson(uint64_t ring_capacity, uint64_t ring_dropped) const;

 private:
  struct OpenSpan {
    ThreadId tid = -1;
    Time start = 0;
    Time waited = 0;
  };
  struct Span {
    Time start = 0;
    Time end = 0;
    ThreadId tid = -1;
    int16_t cpu = -1;
    uint8_t preempted = 0;
  };
  struct Deadline {
    Time at = 0;
    ThreadId tid = -1;
    uint32_t epoch = 0;
  };

  static bool HeapOrder(const Deadline& a, const Deadline& b);

  TaskStats& Slot(ThreadId tid);
  ScopeStats& NodeOf(CpuId cpu);
  void ProcessDeadlines(Time now);
  void PushDeadline(Time at, ThreadId tid, uint32_t epoch);
  void RaiseFinding(ThreadId tid, Time since, Time detected_at, Time waited, bool retroactive);
  void EmitSpan(Time start, Time end, ThreadId tid, CpuId cpu, bool preempted);
  void FlushSpans();
  void UpdatePeak();

  Options opts_;
  uint64_t events_ = 0;
  uint64_t migrations_ = 0;
  uint64_t wakeups_ = 0;
  Time idle_ns_ = 0;
  Time last_when_ = 0;

  std::vector<TaskStats> tasks_;  // Indexed by tid, grown on demand.
  std::vector<ScopeStats> cpus_;  // Indexed by cpu, fixed at construction.
  std::vector<ScopeStats> nodes_;
  ScopeStats machine_;

  std::vector<OpenSpan> open_;  // Indexed by cpu.
  std::vector<Span> spans_;     // Fixed window, flushed when full.
  size_t spans_buffered_ = 0;
  uint64_t spans_emitted_ = 0;

  std::vector<Deadline> heap_;  // Min-heap on (at, tid); <= 1 entry per task.
  std::vector<StreamFinding> findings_;
  uint64_t findings_total_ = 0;
  Time worst_wait_ = 0;

  uint64_t peak_bytes_ = 0;
};

}  // namespace wcores

#endif  // SRC_TELEMETRY_STREAM_ANALYZER_H_
