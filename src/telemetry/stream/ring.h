// Fixed-capacity single-producer / single-consumer ring of StreamRecords.
//
// The contract the streaming pipeline is built on: memory is allocated once,
// up front, and never grows; when the consumer falls behind, records are
// dropped at the producer side and *counted* — never silently lost, never
// buffered without bound. This mirrors the kernel ringbuf discipline the
// SchedLab consumer model assumes (a reader polling a bounded buffer, with a
// `dropped` counter it must surface).
//
// In-simulator both ends run on the simulation thread, so the indices are
// plain integers; the layout (head touched only by the consumer, tail only
// by the producer, capacity a power of two) is the standard SPSC shape, so
// promoting the indices to atomics is all a threaded split would need.
#ifndef SRC_TELEMETRY_STREAM_RING_H_
#define SRC_TELEMETRY_STREAM_RING_H_

#include <cstddef>
#include <cstdint>
#include <memory>

#include "src/telemetry/stream/record.h"

namespace wcores {

class SpscRing {
 public:
  // `capacity` is rounded up to a power of two (minimum 8).
  explicit SpscRing(size_t capacity) {
    size_t cap = 8;
    while (cap < capacity) {
      cap <<= 1;
    }
    mask_ = cap - 1;
    slots_ = std::make_unique<StreamRecord[]>(cap);
  }

  size_t capacity() const { return mask_ + 1; }
  size_t size() const { return tail_ - head_; }
  bool empty() const { return head_ == tail_; }
  bool full() const { return size() == capacity(); }

  // Producer side. Returns false (and leaves the ring unchanged) when full;
  // the caller decides whether that is a drain opportunity or a drop.
  bool TryPush(const StreamRecord& rec) {
    if (full()) {
      return false;
    }
    slots_[tail_ & mask_] = rec;
    ++tail_;
    return true;
  }

  // Explicit loss accounting: every record that could not be pushed must be
  // recorded here so `dropped()` is the exact count of lost events.
  void CountDrop() { ++dropped_; }
  uint64_t dropped() const { return dropped_; }

  // Consumer side. Returns false when empty.
  bool TryPop(StreamRecord* out) {
    if (empty()) {
      return false;
    }
    *out = slots_[head_ & mask_];
    ++head_;
    return true;
  }

  uint64_t total_pushed() const { return tail_; }

 private:
  std::unique_ptr<StreamRecord[]> slots_;
  size_t mask_ = 0;
  uint64_t head_ = 0;  // Consumer cursor.
  uint64_t tail_ = 0;  // Producer cursor.
  uint64_t dropped_ = 0;
};

}  // namespace wcores

#endif  // SRC_TELEMETRY_STREAM_RING_H_
