#include "src/telemetry/stream/stream_sink.h"

#include "src/topo/topology.h"

namespace wcores {

TelemetryStream::Options TelemetryStream::ForTopology(const Topology& topo,
                                                      Time starvation_horizon) {
  Options opts;
  opts.analyzer.n_cpus = topo.n_cores();
  opts.analyzer.cpu_node.resize(topo.n_cores());
  for (int cpu = 0; cpu < topo.n_cores(); ++cpu) {
    opts.analyzer.cpu_node[cpu] = topo.NodeOf(cpu);
  }
  opts.analyzer.starvation_horizon = starvation_horizon;
  return opts;
}

}  // namespace wcores
