// The telemetry subsystem's front door: one object that owns every sink.
//
// A TelemetrySession bundles an EventRecorder (raw event array, Chrome trace
// source) and a LatencyAccountant (latency percentiles) behind a single
// TraceSink, and writes the two report artifacts — a /proc/schedstat-style
// text report and a Perfetto-loadable trace JSON — into a directory.
//
//   TelemetrySession telemetry(machine.topo.n_cores());
//   Simulator sim(machine.topo, features, seed, telemetry.sink());
//   ... run ...
//   telemetry.WriteReports("out/telemetry", sim.sched(), sim.Now(), "fig2_");
#ifndef SRC_TELEMETRY_TELEMETRY_H_
#define SRC_TELEMETRY_TELEMETRY_H_

#include <memory>
#include <string>
#include <utility>

#include "src/telemetry/latency.h"
#include "src/telemetry/stream/stream_sink.h"
#include "src/tools/recorder.h"

namespace wcores {

class Scheduler;

class TelemetrySession {
 public:
  explicit TelemetrySession(int n_cpus, size_t recorder_capacity = 1 << 22)
      : latency_(n_cpus), recorder_(recorder_capacity) {
    multi_.Add(&latency_);
    multi_.Add(&recorder_);
  }

  // The sink to hand to Scheduler / Simulator. Valid for this object's
  // lifetime.
  TraceSink* sink() { return &multi_; }

  LatencyAccountant& latency() { return latency_; }
  const LatencyAccountant& latency() const { return latency_; }
  EventRecorder& recorder() { return recorder_; }
  const EventRecorder& recorder() const { return recorder_; }

  // Attaches the bounded-memory streaming pipeline (one-pass aggregates +
  // online starvation detector) to this session's sink fan-out. Call before
  // handing sink() to the simulator. Unless `opts` already set a snapshot
  // provider, confirmed starvation findings carry this session's
  // LatencySnapshot as their digest — the same evidence the sanity checker
  // attaches to its violations.
  TelemetryStream& AttachStream(TelemetryStream::Options opts);
  // Null until AttachStream is called.
  TelemetryStream* stream() { return stream_.get(); }
  const TelemetryStream* stream() const { return stream_.get(); }

  // Renders the schedstat report for `sched` at virtual time `now`.
  std::string Schedstat(const Scheduler& sched, Time now) const;

  // One-line machine-wide latency digest, e.g. for attaching to sanity-checker
  // violations:
  //   "rq_wait p50=12.0us p99=480.0us max=1.2ms (n=5321) wakeup p99=..."
  std::string LatencySnapshot() const;

  // Writes `<label>schedstat.txt` and `<label>trace.json` under `dir`
  // (created, with parents, if missing), plus `<label>stream.json` (the
  // one-line streaming summary, after closing the pipeline at `now`) when a
  // stream is attached. Returns false if any file could not be written;
  // `error` (optional) gets the reason.
  bool WriteReports(const std::string& dir, const Scheduler& sched, Time now,
                    const std::string& label = "", std::string* error = nullptr) const;

 private:
  LatencyAccountant latency_;
  EventRecorder recorder_;
  std::unique_ptr<TelemetryStream> stream_;
  MultiSink multi_;
};

}  // namespace wcores

#endif  // SRC_TELEMETRY_TELEMETRY_H_
