#include "src/telemetry/telemetry.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "src/core/scheduler.h"
#include "src/telemetry/chrome_trace.h"
#include "src/telemetry/schedstat.h"

namespace wcores {

namespace {

void AppendDigest(std::string* out, const char* name, const Summary& s) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s p50=%.1fus p99=%.1fus max=%s n=%llu", name,
                s.Quantile(0.50) / 1000.0, s.Quantile(0.99) / 1000.0,
                FormatTime(static_cast<Time>(s.Max())).c_str(),
                static_cast<unsigned long long>(s.Count()));
  *out += buf;
}

bool WriteTextFile(const std::filesystem::path& path, const std::string& text,
                   std::string* error) {
  std::ofstream out(path, std::ios::binary);
  out << text;
  out.close();
  if (!out) {
    if (error != nullptr) {
      *error = "failed to write " + path.string();
    }
    return false;
  }
  return true;
}

}  // namespace

std::string TelemetrySession::Schedstat(const Scheduler& sched, Time now) const {
  return SchedstatReport(sched, latency_, now);
}

TelemetryStream& TelemetrySession::AttachStream(TelemetryStream::Options opts) {
  if (opts.analyzer.n_cpus == 0) {
    opts.analyzer.n_cpus = latency_.n_cpus();
  }
  if (!opts.analyzer.snapshot) {
    opts.analyzer.snapshot = [this] { return LatencySnapshot(); };
  }
  stream_ = std::make_unique<TelemetryStream>(std::move(opts));
  multi_.Add(stream_.get());
  return *stream_;
}

std::string TelemetrySession::LatencySnapshot() const {
  LatencyDistributions m = latency_.Machine();
  std::string out;
  AppendDigest(&out, "rq_wait", m.rq_wait);
  out += " | ";
  AppendDigest(&out, "wakeup", m.wakeup_latency);
  out += " | ";
  AppendDigest(&out, "timeslice", m.timeslice);
  return out;
}

bool TelemetrySession::WriteReports(const std::string& dir, const Scheduler& sched, Time now,
                                    const std::string& label, std::string* error) const {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    if (error != nullptr) {
      *error = "cannot create " + dir + ": " + ec.message();
    }
    return false;
  }
  std::filesystem::path base(dir);
  if (!WriteTextFile(base / (label + "schedstat.txt"), Schedstat(sched, now), error)) {
    return false;
  }
  std::string json = ChromeTraceJson(recorder_.events(), sched.topology().n_cores());
  if (!WriteTextFile(base / (label + "trace.json"), json, error)) {
    return false;
  }
  if (stream_ != nullptr) {
    stream_->Finish(now);
    if (!WriteTextFile(base / (label + "stream.json"), stream_->SummaryJson() + "\n", error)) {
      return false;
    }
  }
  return true;
}

}  // namespace wcores
