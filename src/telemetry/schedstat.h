// The /proc/schedstat-style text report of the telemetry subsystem.
//
// Renders the scheduler's event counters (SchedStats), the balance
// decision-verdict table, and the latency percentiles collected by a
// LatencyAccountant — per cpu, per NUMA node, and machine-wide. The format
// is line-oriented and stable so tools (and ParseSchedstatReport) can
// consume it:
//
//   schedstat version 1 (wasted-cores telemetry)
//   timestamp_ns 2000000000
//   cpus 8 nodes 2 online 8
//   counter wakeups 1234
//   ...
//   lat cpu0 rq_wait <count> <p50us> <p95us> <p99us> <maxus>
//   lat node0 wakeup ...
//   lat machine timeslice ...
//   cpustate cpu0 nr_running <n> idle_ns <ns> idle_enters <n> migrations_in <n>
#ifndef SRC_TELEMETRY_SCHEDSTAT_H_
#define SRC_TELEMETRY_SCHEDSTAT_H_

#include <map>
#include <string>

#include "src/core/scheduler.h"
#include "src/telemetry/latency.h"

namespace wcores {

// Full report at `now`. Counters and latency distributions cover the whole
// run (both start at zero with the scheduler).
std::string SchedstatReport(const Scheduler& sched, const LatencyAccountant& lat, Time now);

// What a parse recovers: the machine shape, the raw counters, and every
// latency line keyed by "<scope> <metric>" (e.g. "cpu0 rq_wait",
// "machine wakeup").
struct ParsedSchedstat {
  int version = 0;
  Time timestamp = 0;
  int cpus = 0;
  int nodes = 0;
  int online = 0;
  std::map<std::string, uint64_t> counters;

  struct LatencyLine {
    uint64_t count = 0;
    double p50_us = 0;
    double p95_us = 0;
    double p99_us = 0;
    double max_us = 0;
  };
  std::map<std::string, LatencyLine> latencies;
};

// Parses a report back. Returns false on malformed input (missing header,
// malformed lat/counter lines). Prose sections (the verdict table) are
// skipped, not parsed.
bool ParseSchedstatReport(const std::string& report, ParsedSchedstat* out);

}  // namespace wcores

#endif  // SRC_TELEMETRY_SCHEDSTAT_H_
