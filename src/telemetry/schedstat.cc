#include "src/telemetry/schedstat.h"

#include <cstdio>
#include <cstring>
#include <sstream>

#include "src/tools/profiler.h"

namespace wcores {

namespace {

void AppendCounter(std::string* out, const char* name, uint64_t value) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "counter %s %llu\n", name,
                static_cast<unsigned long long>(value));
  *out += buf;
}

void AppendLatencyLine(std::string* out, const std::string& scope, const char* metric,
                       const Summary& s) {
  char buf[160];
  // Summary samples are nanoseconds (as doubles); report in microseconds.
  std::snprintf(buf, sizeof(buf), "lat %s %s %llu %.3f %.3f %.3f %.3f\n", scope.c_str(), metric,
                static_cast<unsigned long long>(s.Count()), s.Quantile(0.50) / 1000.0,
                s.Quantile(0.95) / 1000.0, s.Quantile(0.99) / 1000.0, s.Max() / 1000.0);
  *out += buf;
}

void AppendScope(std::string* out, const std::string& scope, const LatencyDistributions& d) {
  AppendLatencyLine(out, scope, "wakeup", d.wakeup_latency);
  AppendLatencyLine(out, scope, "rq_wait", d.rq_wait);
  AppendLatencyLine(out, scope, "timeslice", d.timeslice);
  AppendLatencyLine(out, scope, "migration", d.migration_cost);
}

}  // namespace

std::string SchedstatReport(const Scheduler& sched, const LatencyAccountant& lat, Time now) {
  const Topology& topo = sched.topology();
  const SchedStats& st = sched.stats();
  std::string out;
  char buf[192];

  out += "schedstat version 1 (wasted-cores telemetry)\n";
  std::snprintf(buf, sizeof(buf), "timestamp_ns %llu\n", static_cast<unsigned long long>(now));
  out += buf;
  std::snprintf(buf, sizeof(buf), "cpus %d nodes %d online %d\n", topo.n_cores(), topo.n_nodes(),
                sched.OnlineCpus().Count());
  out += buf;

  // ---- Raw scheduler counters (the /proc/schedstat numbers) ---------------
  AppendCounter(&out, "forks", st.forks);
  AppendCounter(&out, "exits", st.exits);
  AppendCounter(&out, "wakeups", st.wakeups);
  AppendCounter(&out, "wakeups_on_prev", st.wakeups_on_prev);
  AppendCounter(&out, "wakeups_on_idle", st.wakeups_on_idle);
  AppendCounter(&out, "wakeups_on_busy", st.wakeups_on_busy);
  AppendCounter(&out, "balance_calls", st.balance_calls);
  AppendCounter(&out, "balance_found_busiest", st.balance_found_busiest);
  AppendCounter(&out, "balance_success", st.balance_success);
  AppendCounter(&out, "balance_moved_tasks", st.balance_moved_tasks);
  AppendCounter(&out, "balance_group_cache_hits", st.balance_group_cache_hits);
  AppendCounter(&out, "balance_group_cache_misses", st.balance_group_cache_misses);
  AppendCounter(&out, "migrations_periodic", st.migrations_periodic);
  AppendCounter(&out, "migrations_idle", st.migrations_idle);
  AppendCounter(&out, "migrations_nohz", st.migrations_nohz);
  AppendCounter(&out, "migrations_hotplug", st.migrations_hotplug);
  AppendCounter(&out, "nohz_kicks", st.nohz_kicks);
  AppendCounter(&out, "ticks", st.ticks);

  // ---- Why balancing invocations gave up ----------------------------------
  BalanceProfile profile = ProfileFromStats(SchedStats{}, st, 0, now);
  out += BalanceVerdictTable(profile);

  // ---- Latency percentiles: cpu, node, machine ----------------------------
  out += "lat scope metric count p50us p95us p99us maxus\n";
  for (CpuId c = 0; c < topo.n_cores(); ++c) {
    AppendScope(&out, "cpu" + std::to_string(c), lat.Cpu(c));
  }
  for (NodeId n = 0; n < topo.n_nodes(); ++n) {
    AppendScope(&out, "node" + std::to_string(n), lat.AggregateCpus(topo.CpusOfNode(n)));
  }
  AppendScope(&out, "machine", lat.Machine());

  // ---- Per-cpu occupancy snapshot -----------------------------------------
  for (CpuId c = 0; c < topo.n_cores(); ++c) {
    std::snprintf(buf, sizeof(buf),
                  "cpustate cpu%d nr_running %d idle_ns %llu idle_enters %llu migrations_in "
                  "%llu\n",
                  c, sched.IsOnline(c) ? sched.NrRunning(c) : -1,
                  static_cast<unsigned long long>(lat.IdleTime(c)),
                  static_cast<unsigned long long>(lat.IdleEnters(c)),
                  static_cast<unsigned long long>(lat.MigrationsInto(c)));
    out += buf;
  }
  return out;
}

bool ParseSchedstatReport(const std::string& report, ParsedSchedstat* out) {
  *out = ParsedSchedstat{};
  std::istringstream in(report);
  std::string line;
  bool have_header = false;
  bool have_shape = false;
  while (std::getline(in, line)) {
    if (line.rfind("schedstat version ", 0) == 0) {
      out->version = std::atoi(line.c_str() + std::strlen("schedstat version "));
      have_header = true;
    } else if (line.rfind("timestamp_ns ", 0) == 0) {
      out->timestamp = std::strtoull(line.c_str() + std::strlen("timestamp_ns "), nullptr, 10);
    } else if (line.rfind("cpus ", 0) == 0) {
      if (std::sscanf(line.c_str(), "cpus %d nodes %d online %d", &out->cpus, &out->nodes,
                      &out->online) != 3) {
        return false;
      }
      have_shape = true;
    } else if (line.rfind("counter ", 0) == 0) {
      char name[64];
      unsigned long long value = 0;
      if (std::sscanf(line.c_str(), "counter %63s %llu", name, &value) != 2) {
        return false;
      }
      out->counters[name] = value;
    } else if (line.rfind("lat ", 0) == 0) {
      if (line.rfind("lat scope ", 0) == 0) {
        continue;  // Column-header line.
      }
      char scope[32];
      char metric[32];
      unsigned long long count = 0;
      ParsedSchedstat::LatencyLine ll;
      if (std::sscanf(line.c_str(), "lat %31s %31s %llu %lf %lf %lf %lf", scope, metric, &count,
                      &ll.p50_us, &ll.p95_us, &ll.p99_us, &ll.max_us) != 7) {
        return false;
      }
      ll.count = count;
      out->latencies[std::string(scope) + " " + metric] = ll;
    }
    // Prose sections (verdict table, cpustate) are informational; cpustate
    // lines are left to ad-hoc consumers.
  }
  return have_header && have_shape && !out->latencies.empty();
}

}  // namespace wcores
