#include "src/telemetry/latency.h"

namespace wcores {

namespace {
const LatencyDistributions kEmptyDistributions;
}  // namespace

LatencyDistributions& LatencyAccountant::ThreadSlot(ThreadId tid) {
  if (tid >= static_cast<ThreadId>(per_thread_.size())) {
    per_thread_.resize(tid + 1);
  }
  return per_thread_[tid];
}

const LatencyDistributions& LatencyAccountant::Thread(ThreadId tid) const {
  if (tid < 0 || tid >= static_cast<ThreadId>(per_thread_.size())) {
    return kEmptyDistributions;
  }
  return per_thread_[tid];
}

void LatencyAccountant::OnSwitchIn(Time now, CpuId cpu, ThreadId tid, Time waited) {
  double w = static_cast<double>(waited);
  per_cpu_[cpu].rq_wait.Add(w);
  ThreadSlot(tid).rq_wait.Add(w);

  if (tid < static_cast<ThreadId>(pending_migration_.size()) &&
      pending_migration_[tid].when != kTimeNever) {
    double cost = static_cast<double>(now - pending_migration_[tid].when);
    pending_migration_[tid].when = kTimeNever;
    per_cpu_[cpu].migration_cost.Add(cost);
    ThreadSlot(tid).migration_cost.Add(cost);
  }
}

void LatencyAccountant::OnSwitchOut(Time now, CpuId cpu, ThreadId tid, Time ran,
                                    bool still_runnable) {
  (void)now;
  (void)still_runnable;
  double r = static_cast<double>(ran);
  per_cpu_[cpu].timeslice.Add(r);
  ThreadSlot(tid).timeslice.Add(r);
}

void LatencyAccountant::OnWakeupLatency(Time now, CpuId cpu, ThreadId tid, Time latency) {
  (void)now;
  double l = static_cast<double>(latency);
  per_cpu_[cpu].wakeup_latency.Add(l);
  ThreadSlot(tid).wakeup_latency.Add(l);
}

void LatencyAccountant::OnMigration(Time now, ThreadId tid, CpuId from, CpuId to,
                                    MigrationReason reason) {
  (void)from;
  (void)reason;
  migrations_[to] += 1;
  if (tid >= static_cast<ThreadId>(pending_migration_.size())) {
    pending_migration_.resize(tid + 1);
  }
  pending_migration_[tid].when = now;
}

void LatencyAccountant::OnIdleEnter(Time now, CpuId cpu) {
  (void)now;
  idle_enters_[cpu] += 1;
}

void LatencyAccountant::OnIdleExit(Time now, CpuId cpu, Time idle_for) {
  (void)now;
  idle_time_[cpu] += idle_for;
}

LatencyDistributions LatencyAccountant::AggregateCpus(const CpuSet& cpus) const {
  LatencyDistributions agg;
  for (CpuId c : cpus) {
    if (c < static_cast<CpuId>(per_cpu_.size())) {
      agg.Merge(per_cpu_[c]);
    }
  }
  return agg;
}

LatencyDistributions LatencyAccountant::Machine() const {
  LatencyDistributions agg;
  for (const LatencyDistributions& d : per_cpu_) {
    agg.Merge(d);
  }
  return agg;
}

}  // namespace wcores
