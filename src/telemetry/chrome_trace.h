// Chrome trace-event JSON export (the telemetry subsystem's timeline side).
//
// Converts the recorder's event array into a timeline loadable by Perfetto
// (ui.perfetto.dev) or chrome://tracing, in the Trace Event Format:
//   * one track ("thread") per cpu, named via 'M' metadata records,
//   * 'B'/'E' duration slices for every thread's stint on a core,
//   * 'i' instant events for migrations (on the destination cpu's track),
//   * 'C' counter tracks for each cpu's runqueue size and load.
// Timestamps are microseconds, as the format requires.
#ifndef SRC_TELEMETRY_CHROME_TRACE_H_
#define SRC_TELEMETRY_CHROME_TRACE_H_

#include <string>
#include <vector>

#include "src/tools/recorder.h"

namespace wcores {

// Source-event cap for the exporter. Perfetto's UI degrades well before the
// JSON writer does, so huge traces are cut at the cap: slices still open at
// the cut are closed, a "trace truncated" instant marks the spot, and a
// warning goes to stderr. Streaming consumers (TelemetryStream) see every
// event regardless; only the timeline artifact is bounded.
inline constexpr size_t kChromeTraceMaxEvents = 1000000;

std::string ChromeTraceJson(const std::vector<TraceEvent>& events, int n_cpus,
                            size_t max_events = kChromeTraceMaxEvents);

// ---- Validation (tests, telemetry_smoke) ----------------------------------

// A minimal JSON document model, sufficient to re-read exported traces.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  // First member with `key`, or nullptr (objects only).
  const JsonValue* Find(const std::string& key) const;
};

// Strict recursive-descent parse of a complete JSON document. Returns false
// and fills `error` (with an offset) on malformed input.
bool ParseJson(const std::string& text, JsonValue* out, std::string* error);

// Structural check of an exported trace: parses the JSON, walks
// traceEvents, and verifies the invariants the exporter promises.
struct ChromeTraceCheck {
  bool valid_json = false;
  bool ts_monotonic = false;        // Non-decreasing ts over the event array.
  bool slices_balanced = false;     // Every 'B' has a matching 'E' per track.
  int thread_name_records = 0;      // 'M' thread_name entries (one per cpu).
  uint64_t slices = 0;              // 'B' records.
  uint64_t counters = 0;            // 'C' records.
  uint64_t instants = 0;            // 'i' records.
  std::string error;

  bool Ok(int n_cpus) const {
    return valid_json && ts_monotonic && slices_balanced && thread_name_records == n_cpus;
  }
};

ChromeTraceCheck CheckChromeTrace(const std::string& json);

}  // namespace wcores

#endif  // SRC_TELEMETRY_CHROME_TRACE_H_
