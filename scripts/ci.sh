#!/usr/bin/env bash
# CI gate, in three stages:
#
#   1. lint    - build wc-lint and run it over src/ and bench/. Any
#                error-severity finding or reason-less suppression fails the
#                gate before we spend time on the build matrix.
#   2. matrix  - build and test the Release and ASan+UBSan configurations.
#                The sanitizer run is what gives the determinism goldens and
#                the randomized invariant fuzzer their teeth: an optimization
#                that corrupts memory or relies on UB fails here even if its
#                output happens to look right.
#   3. tsan    - build the TSan configuration and run the determinism layer
#                (golden hashes + sweep thread-count invariance) under it, so
#                the parallel sweep runner's "same report at -j1/-j2/-j4"
#                claim is also a "no data races" claim.
#
# Usage: scripts/ci.sh [extra ctest args...]
#   e.g. scripts/ci.sh -R Determinism
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"

echo "==== [lint] build wc-lint ===="
cmake --preset release
cmake --build --preset release -j "$JOBS" --target wc-lint
echo "==== [lint] wc-lint src bench ===="
./build-release/src/tools/wc-lint src bench

for preset in release asan-ubsan; do
  echo "==== [$preset] configure ===="
  cmake --preset "$preset"
  echo "==== [$preset] build ===="
  cmake --build --preset "$preset" -j "$JOBS"
  echo "==== [$preset] test ===="
  ctest --preset "$preset" -j "$JOBS" "$@"
done

echo "==== [tsan] configure ===="
cmake --preset tsan
echo "==== [tsan] build ===="
cmake --build --preset tsan -j "$JOBS"
echo "==== [tsan] test (Determinism.*) ===="
# The test preset filters to the determinism layer: golden trace hashes plus
# SweepThreadCountInvariance, which exercises RunSweep at 1/2/4 threads.
ctest --preset tsan -j "$JOBS"

echo "CI OK: lint + release + asan-ubsan + tsan all green."
