#!/usr/bin/env bash
# CI gate, staged:
#
#   1. lint    - build wc-lint and run it over src/ and bench/. Any
#                error-severity finding or reason-less suppression fails the
#                gate before we spend time on the build matrix. Then build
#                wc-analyze and run the interprocedural pass (A1 taint to
#                trace sinks, A2 hot-path allocation, A3 policy confinement,
#                A4 fold-order drift) over the same tree, emitting SARIF.
#                The whole analysis is budgeted at <5s wall so it stays a
#                pre-matrix gate, not a build-matrix peer.
#   2. matrix  - build and test the Release and ASan+UBSan configurations.
#                The sanitizer run is what gives the determinism goldens and
#                the randomized invariant fuzzer their teeth: an optimization
#                that corrupts memory or relies on UB fails here even if its
#                output happens to look right.
#   3. tsan    - build the TSan configuration and run the determinism layer
#                (golden hashes + sweep thread-count invariance) under it, so
#                the parallel sweep runner's "same report at -j1/-j2/-j4"
#                claim is also a "no data races" claim.
#   4. bench   - smoke-run the Release bench binaries with a tiny budget
#                (one benchmark repetition, a scaled-down sweep) into out/,
#                so the perf harness itself cannot bit-rot between perf PRs.
#                Also smoke-runs scripts/ab_bench.sh, the interleaved
#                paired-ratio A/B harness, in its no-worktree self-vs-self
#                mode. Numbers from this stage are meaningless; only exit
#                status and JSON emission matter.
#   5. stream  - the streaming-telemetry soak: one >=10M-event random mix in
#                a single pass with the bounded-memory pipeline attached.
#                The binary's own WC_CHECKs enforce the contract (every
#                event analyzed, zero ring drops, peak aggregator memory
#                within the O(tasks+cpus) budget), so this stage fails the
#                moment the analyzer stops being one-pass-bounded. Also runs
#                the streamed sweep matrix, whose pure-observer cross-check
#                re-runs the scenarios bare and compares combined hashes.
#   6. arena   - the policy-arena gate: the cross-policy conformance suite
#                (invariant fuzzing, recorder-vs-stream differential fold,
#                per-policy goldens, the paper-bug expectation matrix, CFS
#                bit-exactness) in Release AND ASan+UBSan — run explicitly so
#                a caller's -R filter on the matrix can't skip it — plus a
#                sweep_driver --policy=all smoke that must emit the
#                BENCH_policy_arena.json leaderboard.
#   7. fleet   - the sharded-sweep kill/resume drill: expand a small grid
#                into a manifest, run a single-process reference, then run
#                two concurrent shard processes into one results store —
#                SIGKILLing one mid-run and resuming it — and require the
#                wc-trend merge of the sharded store to be byte-identical
#                (cmp) to the reference merge. This is the fleet service's
#                whole contract in one stage: claims survive death, receipts
#                resume exactly, and sharding never changes a hash.
#
# Usage: scripts/ci.sh [extra ctest args...]
#   e.g. scripts/ci.sh -R Determinism
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"

echo "==== [lint] build wc-lint ===="
cmake --preset release
cmake --build --preset release -j "$JOBS" --target wc-lint
echo "==== [lint] wc-lint src bench ===="
./build-release/src/tools/wc-lint src bench

echo "==== [analyze] build wc-analyze ===="
cmake --build --preset release -j "$JOBS" --target wc-analyze
echo "==== [analyze] wc-analyze src bench (interprocedural A1-A4) ===="
ANALYZE_SARIF="$(mktemp --suffix=.sarif)"
ANALYZE_T0="$(date +%s%3N)"
./build-release/src/tools/wc-analyze --root=. --sarif="$ANALYZE_SARIF" src bench
ANALYZE_T1="$(date +%s%3N)"
ANALYZE_MS="$((ANALYZE_T1 - ANALYZE_T0))"
echo "wc-analyze wall time: ${ANALYZE_MS}ms"
# The analyzer earns its pre-matrix slot by being effectively free; if the
# whole-tree pass ever crosses 5s the gate itself has regressed.
test "$ANALYZE_MS" -lt 5000
test -s "$ANALYZE_SARIF"
grep -q '"\$schema"' "$ANALYZE_SARIF"
rm -f "$ANALYZE_SARIF"

for preset in release asan-ubsan; do
  echo "==== [$preset] configure ===="
  cmake --preset "$preset"
  echo "==== [$preset] build ===="
  cmake --build --preset "$preset" -j "$JOBS"
  echo "==== [$preset] test ===="
  ctest --preset "$preset" -j "$JOBS" "$@"
done

echo "==== [asan-ubsan] fuzz suite ===="
# Always run the randomized invariant fuzzer sanitized, even when the caller
# filtered the matrix above with -R: the fuzzer is where hotplug churn, the
# load-memo cross-checks, and the decay-forward property get their teeth.
ctest --preset asan-ubsan -j "$JOBS" -R 'FuzzInvariants\.'

echo "==== [tsan] configure ===="
cmake --preset tsan
echo "==== [tsan] build ===="
cmake --build --preset tsan -j "$JOBS"
echo "==== [tsan] test (Determinism.*) ===="
# The test preset filters to the determinism layer: golden trace hashes plus
# SweepThreadCountInvariance, which exercises RunSweep at 1/2/4 threads.
ctest --preset tsan -j "$JOBS"

echo "==== [bench] smoke (tiny budget, Release) ===="
SMOKE_OUT="$(mktemp -d)"
trap 'rm -rf "$SMOKE_OUT"' EXIT
# The system google-benchmark predates the "0.001s" suffix syntax; pass a
# bare double.
./build-release/bench/micro_sched_ops --out="$SMOKE_OUT" --benchmark_min_time=0.001
./build-release/bench/sweep_driver --out="$SMOKE_OUT" --threads=1 --scale=0.02 --random=1
test -s "$SMOKE_OUT/BENCH_micro_sched_ops.json"
test -s "$SMOKE_OUT/BENCH_sweep.json"
# The scaling key must be present either as a ratio (multi-core host) or as
# an explicit null (1-core host / --threads=1, as in this smoke run) — never
# silently absent, which downstream readers treat as a divide-by-missing-row.
grep -Eq '"scaling": (null|[0-9.]+)' "$SMOKE_OUT/BENCH_sweep.json"
echo "==== [bench] ab_bench.sh harness smoke (self-vs-self, one pair) ===="
scripts/ab_bench.sh --smoke
test -s out/BENCH_ab.json
grep -q '"median_ratio"' out/BENCH_ab.json

echo "==== [stream] big-mix soak (>=10M events, bounded memory) ===="
./build-release/bench/sweep_driver --out="$SMOKE_OUT" --seed=4242 --big-mix=10000000
test -s "$SMOKE_OUT/BENCH_stream_soak.json"
grep -q '"ring_dropped": 0' "$SMOKE_OUT/BENCH_stream_soak.json"
echo "==== [stream] streamed sweep matrix + pure-observer cross-check ===="
./build-release/bench/sweep_driver --out="$SMOKE_OUT" --threads=2 --scale=0.02 \
  --random=1 --telemetry-stream="$SMOKE_OUT/stream"
test -s "$SMOKE_OUT/stream/sweep_stream.jsonl"

echo "==== [arena] cross-policy conformance (Release + ASan/UBSan) ===="
ctest --preset release -j "$JOBS" -R 'modsched\.'
ctest --preset asan-ubsan -j "$JOBS" -R 'modsched\.'
echo "==== [arena] sweep_driver --policy=all smoke ===="
./build-release/bench/sweep_driver --out="$SMOKE_OUT" --threads=1 --scale=0.02 \
  --random=1 --policy=all
test -s "$SMOKE_OUT/BENCH_policy_arena.json"
grep -q '"policy_arena"' "$SMOKE_OUT/BENCH_policy_arena.json"

echo "==== [fleet] grid manifest + sharded kill/resume + merge bit-identity ===="
FLEET="$SMOKE_OUT/fleet"
mkdir -p "$FLEET"
SWEEP=./build-release/bench/sweep_driver
TREND=./build-release/src/tools/wc-trend
# A grid big enough that a kill lands mid-run but small enough for CI:
# 2 topos x 2 feature sets x 2 policies x 2 mixes x 2 seeds = 32 scenarios.
"$SWEEP" --make-manifest="$FLEET/manifest.jsonl" \
  --grid='topo=flat1x4,flat2x4;workload=mix;feat=stock,fixed;policy=cfs,o1;mix=6,10;seeds=2;scale=0.02;horizon_ms=40;seed=7'
# Single-process reference run and merge.
"$SWEEP" --shard=0/1 --manifest="$FLEET/manifest.jsonl" --results="$FLEET/ref"
"$TREND" merge --manifest="$FLEET/manifest.jsonl" --results="$FLEET/ref" \
  --out="$FLEET/ref_merged.jsonl"
# Two concurrent shard processes into one store; SIGKILL shard 1 mid-run.
# The kill may land after shard 1 already exited on a fast host — that is
# fine, the drill only requires that a killed shard resumes correctly.
"$SWEEP" --shard=0/2 --manifest="$FLEET/manifest.jsonl" --results="$FLEET/two" &
FLEET_S0=$!
"$SWEEP" --shard=1/2 --manifest="$FLEET/manifest.jsonl" --results="$FLEET/two" &
FLEET_S1=$!
sleep 0.2
kill -9 "$FLEET_S1" 2>/dev/null || true
wait "$FLEET_S1" || true   # Reap; nonzero/SIGKILL status is the point.
wait "$FLEET_S0"           # Shard 0 must succeed on its own.
# Resume the killed shard: its flock claims died with it, its receipt file
# may have a dirty tail; the resumed process self-repairs and finishes
# whatever the store still misses.
"$SWEEP" --shard=1/2 --manifest="$FLEET/manifest.jsonl" --results="$FLEET/two"
"$TREND" merge --manifest="$FLEET/manifest.jsonl" --results="$FLEET/two" \
  --out="$FLEET/two_merged.jsonl"
# The fleet contract: sharded + killed + resumed == single process, to the byte.
cmp "$FLEET/ref_merged.jsonl" "$FLEET/two_merged.jsonl"
"$TREND" diff "$FLEET/ref_merged.jsonl" "$FLEET/two_merged.jsonl" | grep -q 'identical'
# Malformed numeric flags must take the hard-error path, not a stoi throw.
if "$SWEEP" --threads=bogus 2>/dev/null; then
  echo "sweep_driver accepted a malformed --threads value" >&2
  exit 1
fi

echo "CI OK: lint + release + asan-ubsan + tsan + bench smoke + stream soak + policy arena + fleet drill all green."
