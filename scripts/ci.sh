#!/usr/bin/env bash
# CI gate: build and test the Release and ASan+UBSan configurations.
#
# The sanitizer run is what gives the determinism goldens and the randomized
# invariant fuzzer their teeth: an optimization that corrupts memory or relies
# on UB fails here even if its output happens to look right.
#
# Usage: scripts/ci.sh [extra ctest args...]
#   e.g. scripts/ci.sh -R Determinism
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"

for preset in release asan-ubsan; do
  echo "==== [$preset] configure ===="
  cmake --preset "$preset"
  echo "==== [$preset] build ===="
  cmake --build --preset "$preset" -j "$JOBS"
  echo "==== [$preset] test ===="
  ctest --preset "$preset" -j "$JOBS" "$@"
done

echo "CI OK: release + asan-ubsan both green."
