#!/usr/bin/env bash
# Interleaved A/B perf harness: the paired-ratio methodology the perf PRs
# use to claim wins on a noisy host.
#
# Builds the baseline rev into a scratch worktree (build-ab/), builds HEAD's
# working tree with the release preset, then alternates runs pair by pair —
# base/head on even pairs, head/base on odd — so slow drift in host load
# cancels out of each pair instead of biasing one side. Reports the MEDIAN
# of the per-pair head/base ratios per metric (ratio < 1.0 means HEAD is
# faster); medians of paired ratios survive the load spikes that make
# absolute numbers on this host meaningless.
#
# Metrics:
#   BM_NewidlePass, BM_SimulatedSecond   (micro_sched_ops real_time)
#   random/99-4 us/event                 (sweep_driver: wall_ms*1000/sim_events)
#
# Usage: scripts/ab_bench.sh [--baseline=REV] [--pairs=N] [--min-time=S] [--smoke]
#   --baseline=REV  rev to A/B the working tree against (default: HEAD, i.e.
#                   dirty-tree-vs-last-commit; pass the pre-PR rev for PR claims)
#   --pairs=N       number of interleaved pairs (default 8; claims need >= 8)
#   --smoke         harness self-test for CI: one tiny-budget pair, both sides
#                   the HEAD build (no worktree, ratios ~1.0). Exercises the
#                   interleave loop, both parsers, and the ratio math; the
#                   numbers mean nothing, only exit status does.
#
# Writes the per-pair ratios and medians to out/BENCH_ab.json.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE="HEAD"
PAIRS=8
MIN_TIME=0.1
SMOKE=0
for arg in "$@"; do
  case "$arg" in
    --baseline=*) BASELINE="${arg#*=}" ;;
    --pairs=*)    PAIRS="${arg#*=}" ;;
    --min-time=*) MIN_TIME="${arg#*=}" ;;
    --smoke)      SMOKE=1 ;;
    *) echo "usage: $0 [--baseline=REV] [--pairs=N] [--min-time=S] [--smoke]" >&2
       exit 2 ;;
  esac
done

JOBS="$(nproc 2>/dev/null || echo 2)"
FILTER='BM_NewidlePass$|BM_SimulatedSecond'

echo "==== [ab] build HEAD (release preset) ===="
cmake --preset release >/dev/null
cmake --build --preset release -j "$JOBS" --target micro_sched_ops sweep_driver

HEAD_ROOT="$PWD"
HEAD_BUILD="$PWD/build-release"
RUNS="$(mktemp -d)"
WORKTREE=""
cleanup() {
  rm -rf "$RUNS"
  if [ -n "$WORKTREE" ]; then
    git worktree remove --force "$WORKTREE" >/dev/null 2>&1 || true
  fi
}
trap cleanup EXIT

if [ "$SMOKE" = 1 ]; then
  # Both sides are the HEAD build: no second compile in CI, and a median
  # ratio far from 1.0 would itself flag a broken harness (not enforced —
  # one tiny-budget pair is pure plumbing).
  PAIRS=1
  MIN_TIME=0.001
  BASE_ROOT="$HEAD_ROOT"
  BASE_BUILD="$HEAD_BUILD"
  SWEEP_ARGS=(--threads=1 --scale=0.02 --random=1)
  SCENARIO="random/99-0"
else
  WORKTREE="$PWD/build-ab/tree"
  BASE_ROOT="$WORKTREE"
  BASE_BUILD="$PWD/build-ab/build"
  echo "==== [ab] build baseline $BASELINE (worktree) ===="
  git worktree remove --force "$WORKTREE" >/dev/null 2>&1 || true
  git worktree add --force --detach "$WORKTREE" "$BASELINE" >/dev/null
  cmake -S "$BASE_ROOT" -B "$BASE_BUILD" -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "$BASE_BUILD" -j "$JOBS" --target micro_sched_ops sweep_driver
  SWEEP_ARGS=(--threads=1)
  SCENARIO="random/99-4"
fi

# One side's turn within a pair: micro benches then the sweep, binaries run
# from their own source root (sweep scenarios resolve paths off the cwd).
run_side() {
  local root="$1" build="$2" dir="$3"
  mkdir -p "$dir"
  (cd "$root" && "$build/bench/micro_sched_ops" --out="$dir" \
      --benchmark_filter="$FILTER" --benchmark_min_time="$MIN_TIME" >/dev/null)
  (cd "$root" && "$build/bench/sweep_driver" --out="$dir" \
      "${SWEEP_ARGS[@]}" >/dev/null)
}

for ((i = 0; i < PAIRS; ++i)); do
  if ((i % 2 == 0)); then order="base head"; else order="head base"; fi
  echo "==== [ab] pair $((i + 1))/$PAIRS ($order) ===="
  for side in $order; do
    if [ "$side" = base ]; then
      run_side "$BASE_ROOT" "$BASE_BUILD" "$RUNS/base-$i"
    else
      run_side "$HEAD_ROOT" "$HEAD_BUILD" "$RUNS/head-$i"
    fi
  done
done

mkdir -p out
python3 - "$RUNS" "$PAIRS" "$SCENARIO" "$BASELINE" out/BENCH_ab.json <<'EOF'
import json
import statistics
import sys

runs, pairs, scenario, baseline, report_path = (
    sys.argv[1], int(sys.argv[2]), sys.argv[3], sys.argv[4], sys.argv[5])


def metrics(side, i):
    m = {}
    with open(f"{runs}/{side}-{i}/BENCH_micro_sched_ops.json") as f:
        for row in json.load(f)["results"]:
            m[row["name"]] = row["real_time"]
    with open(f"{runs}/{side}-{i}/BENCH_sweep.json") as f:
        for row in json.load(f)["results"]:
            if row["name"] == scenario:
                m[f"{scenario} us/event"] = (
                    row["wall_ms"] * 1000.0 / row["sim_events"])
    return m


ratios = {}
for i in range(pairs):
    base, head = metrics("base", i), metrics("head", i)
    for name in sorted(base):
        if name in head and base[name] > 0:
            ratios.setdefault(name, []).append(head[name] / base[name])

report = {"baseline": baseline, "pairs": pairs, "metrics": {}}
print(f"\npaired head/base ratios vs {baseline} ({pairs} pairs; <1.0 = HEAD faster)")
for name, rs in ratios.items():
    med = statistics.median(rs)
    report["metrics"][name] = {"median_ratio": med, "ratios": rs}
    print(f"  {name:<34} median {med:.3f}  "
          f"[{min(rs):.3f} .. {max(rs):.3f}]")
    if not all(r > 0 for r in rs):
        sys.exit(f"non-positive ratio for {name}: {rs}")
if not ratios:
    sys.exit("no common metrics parsed out of either side")

with open(report_path, "w") as f:
    json.dump(report, f, indent=1)
    f.write("\n")
print(f"wrote {report_path}")
EOF
